// Unit tests for the common substrate: hex, rng, codec, result, strong ids.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/codec.hpp"
#include "common/hex.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace jenga {
namespace {

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> data{0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  auto back = from_hex("0001abff7f");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, AcceptsPrefixAndUppercase) {
  auto v = from_hex("0xDEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_FALSE(hash_from_hex("ab").has_value());  // wrong length for a digest
}

TEST(Hex, HashRoundTrip) {
  Hash256 h;
  for (std::size_t i = 0; i < 32; ++i) h.bytes[i] = static_cast<std::uint8_t>(i * 7 + 1);
  auto parsed = hash_from_hex(to_hex(h));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBoundRespected) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng base(5);
  Rng f1 = base.fork("workload");
  Rng f2 = base.fork("workload");
  Rng f3 = base.fork("network");
  EXPECT_EQ(f1.next(), f2.next());
  EXPECT_NE(f1.next(), f3.next());
}

TEST(Rng, GeometricMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric_mean(10.0));
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.5);
}

TEST(Rng, GeometricMeanAtLeastOne) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.geometric_mean(1.3), 1u);
}

TEST(Codec, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.failed());
}

TEST(Codec, BlobAndStringRoundTrip) {
  Writer w;
  std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  w.blob(payload);
  w.str("hello jenga");
  Reader r(w.data());
  EXPECT_EQ(r.blob(), payload);
  EXPECT_EQ(r.str(), "hello jenga");
}

TEST(Codec, HashAndIdRoundTrip) {
  Hash256 h;
  h.bytes[0] = 0xFE;
  h.bytes[31] = 0x01;
  Writer w;
  w.hash(h);
  w.id(NodeId{77});
  w.id(AccountId{123456789012345ULL});
  Reader r(w.data());
  EXPECT_EQ(r.hash(), h);
  EXPECT_EQ(r.id<NodeId>(), NodeId{77});
  EXPECT_EQ(r.id<AccountId>(), AccountId{123456789012345ULL});
}

TEST(Codec, TruncatedReadFails) {
  Writer w;
  w.u32(5);
  Reader r(w.data());
  (void)r.u64();  // asks for more than available
  EXPECT_TRUE(r.failed());
}

TEST(Codec, OversizedBlobLengthFails) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes, provides none
  Reader r(w.data());
  (void)r.blob();
  EXPECT_TRUE(r.failed());
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  Result<int> bad(Err<std::string>("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "boom");
  EXPECT_EQ(bad.value_or(3), 3);
}

TEST(Status, OkAndError) {
  Status<> ok;
  EXPECT_TRUE(ok.ok());
  Status<> bad(Err<std::string>("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
}

TEST(StrongId, TypeSafetyAndHash) {
  NodeId a{1}, b{1}, c{2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  std::unordered_set<NodeId> set{a, b, c};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Log, SinkCapturesFormattedLinesAndRestores) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel lv, const std::string& line) { captured.emplace_back(lv, line); });

  JENGA_LOG_INFO("hello %d %s", 42, "world");
  JENGA_LOG_DEBUG("below threshold %d", 1);  // filtered out
  JENGA_LOG_ERROR("boom");

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "hello 42 world");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "boom");

  // Empty sink restores the stderr default; no further capture.
  set_log_sink({});
  JENGA_LOG_ERROR("not captured");
  EXPECT_EQ(captured.size(), 2u);
  set_log_level(saved);
}

TEST(Hash256, PrefixU64BigEndian) {
  Hash256 h;
  h.bytes[0] = 0x01;
  h.bytes[7] = 0xFF;
  EXPECT_EQ(h.prefix_u64(), 0x01000000000000FFULL);
  EXPECT_FALSE(h.is_zero());
  EXPECT_TRUE(Hash256{}.is_zero());
}

}  // namespace
}  // namespace jenga
