// Hypergeometric failure analysis (Eq. 1–3) and the Table I shard-size rule.
#include <gtest/gtest.h>

#include <cmath>

#include "security/failure.hpp"

namespace jenga::security {
namespace {

TEST(LogChoose, KnownValues) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
  EXPECT_EQ(log_choose(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(Hypergeometric, TinyExactCase) {
  // Population 5 (2 marked), draw 2.  P[X>=1] = 1 - C(3,2)/C(5,2) = 1 - 3/10.
  EXPECT_NEAR(hypergeometric_tail(5, 2, 2, 1), 0.7, 1e-12);
  // P[X>=2] = C(2,2)/C(5,2) = 1/10.
  EXPECT_NEAR(hypergeometric_tail(5, 2, 2, 2), 0.1, 1e-12);
}

TEST(Hypergeometric, DegenerateCases) {
  EXPECT_NEAR(hypergeometric_tail(10, 5, 3, 0), 1.0, 1e-12);  // X>=0 always
  EXPECT_NEAR(hypergeometric_tail(10, 0, 3, 1), 0.0, 1e-12);  // no marked items
  EXPECT_NEAR(hypergeometric_tail(10, 10, 3, 3), 1.0, 1e-12);  // all marked
}

TEST(Hypergeometric, TailMonotoneInThreshold) {
  double prev = 1.0;
  for (std::uint64_t x = 0; x <= 20; ++x) {
    const double p = hypergeometric_tail(100, 30, 20, x);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
  }
}

TEST(ShardFailure, GrowsWithByzantineFraction) {
  const double p20 = shard_failure_probability(1200, 0.20, 100);
  const double p25 = shard_failure_probability(1200, 0.25, 100);
  const double p30 = shard_failure_probability(1200, 0.30, 100);
  EXPECT_LT(p20, p25);
  EXPECT_LT(p25, p30);
}

TEST(ShardFailure, ShrinksWithShardSize) {
  // Bigger shards concentrate less sampling variance around f < 1/3.
  const double small = shard_failure_probability(4800, 0.20, 60);
  const double large = shard_failure_probability(4800, 0.20, 240);
  EXPECT_LT(large, small);
}

TEST(SubgroupFailure, ShrinksWithSubgroupSize) {
  double prev = 1.0;
  for (std::uint64_t j = 1; j <= 30; ++j) {
    const double p = subgroup_failure_probability(240, j);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(SubgroupFailure, SingleMemberIsOneThird) {
  // One member drawn from a shard with exactly k/3 Byzantine nodes.
  EXPECT_NEAR(subgroup_failure_probability(240, 1), 80.0 / 240.0, 1e-12);
}

TEST(SystemFailure, PaperTable1SizesAreSafe) {
  // Table I: S in {4,6,8,10,12}, nodes/shard {180,200,210,230,240}, f=20%.
  const std::pair<std::uint32_t, std::uint64_t> table[] = {
      {4, 180}, {6, 200}, {8, 210}, {10, 230}, {12, 240}};
  for (const auto& [s, k] : table) {
    const double p = system_failure_probability(k * s, s, 0.20);
    EXPECT_LT(p, kFailureTarget) << "S=" << s << " k=" << k;
    EXPECT_GT(p, 0.0) << "S=" << s;
  }
}

TEST(SystemFailure, ReproducesPaperTable1Values) {
  // Paper Table I reports (in units of 1e-6): 1.6, 6.1, 5.1, 5.3, 2.8.
  const std::tuple<std::uint32_t, std::uint64_t, double> rows[] = {
      {4, 180, 1.6}, {6, 200, 6.1}, {8, 210, 5.1}, {10, 230, 5.3}, {12, 240, 2.8}};
  for (const auto& [s, k, paper_e6] : rows) {
    const double ours_e6 = system_failure_probability(k * s, s, 0.20) * 1e6;
    EXPECT_NEAR(ours_e6, paper_e6, 0.15) << "S=" << s;
  }
}

TEST(SystemFailure, MuchSmallerShardsUnsafe) {
  // 40-node shards at 12 shards cannot meet the 2^-17 bound.
  EXPECT_GT(system_failure_probability(40 * 12, 12, 0.20), kFailureTarget);
}

TEST(ChooseShardSize, MeetsTargetAndIsMinimal) {
  for (std::uint32_t s : {4u, 6u, 8u, 10u, 12u}) {
    const std::uint64_t k = choose_shard_size(s, 0.20);
    ASSERT_GT(k, 0u) << "S=" << s;
    EXPECT_EQ(k % s, 0u);  // integral subgroups
    EXPECT_LT(system_failure_probability(k * s, s, 0.20), kFailureTarget);
    if (k > s) {
      EXPECT_GE(system_failure_probability((k - s) * s, s, 0.20), kFailureTarget)
          << "k not minimal for S=" << s;
    }
  }
}

TEST(ChooseShardSize, ComparableToPaperTable1) {
  // Our chooser should land in the same ballpark as the paper's hand-picked
  // sizes (their sizes are safe but not exactly minimal).
  const std::pair<std::uint32_t, std::uint64_t> table[] = {
      {4, 180}, {6, 200}, {8, 210}, {10, 230}, {12, 240}};
  for (const auto& [s, paper_k] : table) {
    const std::uint64_t ours = choose_shard_size(s, 0.20);
    EXPECT_LE(ours, paper_k + 60) << "S=" << s;
    EXPECT_GE(ours, paper_k / 2) << "S=" << s;
  }
}

TEST(ChooseShardSize, HigherFractionNeedsBiggerShards) {
  EXPECT_GT(choose_shard_size(8, 0.25), choose_shard_size(8, 0.15));
}

TEST(ChooseShardSize, ImpossibleTargetReturnsZero) {
  EXPECT_EQ(choose_shard_size(4, 0.33, 1e-300, /*max_k=*/256), 0u);
}

}  // namespace
}  // namespace jenga::security
