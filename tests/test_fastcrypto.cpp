// FastCrypto simulation provider: same observable semantics as the real
// Schnorr provider (sign/verify/aggregate + bitmap), at hash speed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "crypto/fastcrypto.hpp"
#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

TEST(FastCrypto, SignVerify) {
  const FastKey k = fast_keypair(1);
  const Hash256 msg = sha256("m");
  EXPECT_TRUE(fast_verify(k.public_id, msg, fast_sign(k, msg)));
}

TEST(FastCrypto, WrongMessageRejected) {
  const FastKey k = fast_keypair(2);
  const auto sig = fast_sign(k, sha256("a"));
  EXPECT_FALSE(fast_verify(k.public_id, sha256("b"), sig));
}

TEST(FastCrypto, WrongKeyRejected) {
  const FastKey k1 = fast_keypair(3);
  const FastKey k2 = fast_keypair(4);
  const Hash256 msg = sha256("m");
  EXPECT_FALSE(fast_verify(k2.public_id, msg, fast_sign(k1, msg)));
}

TEST(FastCrypto, KeypairDeterministic) {
  EXPECT_EQ(fast_keypair(5).public_id, fast_keypair(5).public_id);
  EXPECT_NE(fast_keypair(5).public_id, fast_keypair(6).public_id);
}

class FastMultisigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t i = 0; i < 7; ++i) {
      keys_.push_back(fast_keypair(100 + i));
      ids_.push_back(keys_.back().public_id);
    }
    msg_ = sha256("certificate");
  }

  std::vector<FastKey> keys_;
  std::vector<std::uint64_t> ids_;
  Hash256 msg_;
};

TEST_F(FastMultisigTest, FullGroup) {
  std::vector<bool> part(keys_.size(), true);
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_EQ(sig.signer_count(), 7u);
  EXPECT_TRUE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, QuorumSubset) {
  std::vector<bool> part{true, false, true, true, false, true, true};  // 5 of 7
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_EQ(sig.signer_count(), 5u);
  EXPECT_TRUE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, BitmapTamperRejected) {
  std::vector<bool> part{true, true, true, false, false, false, false};
  auto sig = fast_aggregate(keys_, part, msg_);
  sig.signers[4] = true;  // claim an extra signer
  EXPECT_FALSE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, AggregateTamperRejected) {
  std::vector<bool> part(keys_.size(), true);
  auto sig = fast_aggregate(keys_, part, msg_);
  sig.aggregate ^= 1;
  EXPECT_FALSE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, WrongMessageRejected) {
  std::vector<bool> part(keys_.size(), true);
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_FALSE(fast_verify_multisig(ids_, sha256("other"), sig));
}

TEST_F(FastMultisigTest, EmptySignerSetRejected) {
  std::vector<bool> part(keys_.size(), false);
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_FALSE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, GroupSizeMismatchRejected) {
  std::vector<bool> part(keys_.size(), true);
  const auto sig = fast_aggregate(keys_, part, msg_);
  std::vector<std::uint64_t> fewer(ids_.begin(), ids_.end() - 1);
  EXPECT_FALSE(fast_verify_multisig(fewer, msg_, sig));
}

// ---------------------------------------------------------------------------
// Batched verification: many certificates from different groups over
// different messages checked in one aggregated pass (gossip frame pooling).

class FastBatchVerifyTest : public ::testing::Test {
 protected:
  struct Cert {
    std::vector<std::uint64_t> ids;
    Hash256 msg;
    FastMultiSig sig;
  };

  Cert make_cert(std::uint64_t key_seed, std::size_t n, std::string_view msg,
                 std::size_t skip = SIZE_MAX) {
    Cert c;
    std::vector<FastKey> keys;
    std::vector<bool> part;
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(fast_keypair(key_seed + i));
      c.ids.push_back(keys.back().public_id);
      part.push_back(i != skip);
    }
    c.msg = sha256(msg);
    c.sig = fast_aggregate(keys, part, c.msg);
    return c;
  }

  static FastBatchEntry entry_of(const Cert& c) {
    return FastBatchEntry{c.ids, c.msg, &c.sig};
  }
};

TEST_F(FastBatchVerifyTest, MixedGroupsAndMessagesAccepted) {
  const Cert a = make_cert(500, 7, "shard-0 height 3");
  const Cert b = make_cert(600, 10, "channel-2 height 9", /*skip=*/4);  // 9-of-10
  const Cert c = make_cert(700, 4, "shard-1 height 5");
  const std::vector<FastBatchEntry> entries{entry_of(a), entry_of(b), entry_of(c)};
  EXPECT_TRUE(fast_verify_multisig_batch(entries, /*seed=*/42));
  EXPECT_TRUE(fast_verify_multisig_batch(entries, /*seed=*/1234));  // any seed
}

TEST_F(FastBatchVerifyTest, EmptyBatchVacuouslyTrue) {
  EXPECT_TRUE(fast_verify_multisig_batch({}, 42));
}

TEST_F(FastBatchVerifyTest, OneForgedEntryPoisonsTheBatch) {
  const Cert a = make_cert(500, 7, "good one");
  Cert b = make_cert(600, 7, "forged one");
  b.sig.aggregate ^= 0x10;  // tampered aggregate
  const std::vector<FastBatchEntry> entries{entry_of(a), entry_of(b)};
  EXPECT_FALSE(fast_verify_multisig_batch(entries, 42));
  // Per-entry fallback isolates the culprit.
  EXPECT_TRUE(fast_verify_multisig(a.ids, a.msg, a.sig));
  EXPECT_FALSE(fast_verify_multisig(b.ids, b.msg, b.sig));
}

TEST_F(FastBatchVerifyTest, WrongMessageRejected) {
  Cert a = make_cert(500, 5, "signed message");
  a.msg = sha256("claimed message");  // cert presented against another digest
  const std::vector<FastBatchEntry> entries{entry_of(a)};
  EXPECT_FALSE(fast_verify_multisig_batch(entries, 42));
}

TEST_F(FastBatchVerifyTest, BitmapTamperRejected) {
  Cert a = make_cert(500, 6, "msg", /*skip=*/2);
  a.sig.signers[2] = true;  // claim the missing signer participated
  const std::vector<FastBatchEntry> entries{entry_of(a)};
  EXPECT_FALSE(fast_verify_multisig_batch(entries, 42));
}

TEST_F(FastBatchVerifyTest, EmptySignerSetRejected) {
  Cert a = make_cert(500, 4, "msg");
  std::fill(a.sig.signers.begin(), a.sig.signers.end(), false);
  a.sig.aggregate = 0;
  const std::vector<FastBatchEntry> entries{entry_of(a)};
  EXPECT_FALSE(fast_verify_multisig_batch(entries, 42));
}

TEST(FastCryptoWire, SizeConstantsSane) {
  EXPECT_EQ(kSignatureWireBytes, 64u);
  EXPECT_EQ(kPublicKeyWireBytes, 33u);
}

}  // namespace
}  // namespace jenga::crypto
