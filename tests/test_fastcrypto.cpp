// FastCrypto simulation provider: same observable semantics as the real
// Schnorr provider (sign/verify/aggregate + bitmap), at hash speed.
#include <gtest/gtest.h>

#include "crypto/fastcrypto.hpp"
#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

TEST(FastCrypto, SignVerify) {
  const FastKey k = fast_keypair(1);
  const Hash256 msg = sha256("m");
  EXPECT_TRUE(fast_verify(k.public_id, msg, fast_sign(k, msg)));
}

TEST(FastCrypto, WrongMessageRejected) {
  const FastKey k = fast_keypair(2);
  const auto sig = fast_sign(k, sha256("a"));
  EXPECT_FALSE(fast_verify(k.public_id, sha256("b"), sig));
}

TEST(FastCrypto, WrongKeyRejected) {
  const FastKey k1 = fast_keypair(3);
  const FastKey k2 = fast_keypair(4);
  const Hash256 msg = sha256("m");
  EXPECT_FALSE(fast_verify(k2.public_id, msg, fast_sign(k1, msg)));
}

TEST(FastCrypto, KeypairDeterministic) {
  EXPECT_EQ(fast_keypair(5).public_id, fast_keypair(5).public_id);
  EXPECT_NE(fast_keypair(5).public_id, fast_keypair(6).public_id);
}

class FastMultisigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t i = 0; i < 7; ++i) {
      keys_.push_back(fast_keypair(100 + i));
      ids_.push_back(keys_.back().public_id);
    }
    msg_ = sha256("certificate");
  }

  std::vector<FastKey> keys_;
  std::vector<std::uint64_t> ids_;
  Hash256 msg_;
};

TEST_F(FastMultisigTest, FullGroup) {
  std::vector<bool> part(keys_.size(), true);
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_EQ(sig.signer_count(), 7u);
  EXPECT_TRUE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, QuorumSubset) {
  std::vector<bool> part{true, false, true, true, false, true, true};  // 5 of 7
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_EQ(sig.signer_count(), 5u);
  EXPECT_TRUE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, BitmapTamperRejected) {
  std::vector<bool> part{true, true, true, false, false, false, false};
  auto sig = fast_aggregate(keys_, part, msg_);
  sig.signers[4] = true;  // claim an extra signer
  EXPECT_FALSE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, AggregateTamperRejected) {
  std::vector<bool> part(keys_.size(), true);
  auto sig = fast_aggregate(keys_, part, msg_);
  sig.aggregate ^= 1;
  EXPECT_FALSE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, WrongMessageRejected) {
  std::vector<bool> part(keys_.size(), true);
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_FALSE(fast_verify_multisig(ids_, sha256("other"), sig));
}

TEST_F(FastMultisigTest, EmptySignerSetRejected) {
  std::vector<bool> part(keys_.size(), false);
  const auto sig = fast_aggregate(keys_, part, msg_);
  EXPECT_FALSE(fast_verify_multisig(ids_, msg_, sig));
}

TEST_F(FastMultisigTest, GroupSizeMismatchRejected) {
  std::vector<bool> part(keys_.size(), true);
  const auto sig = fast_aggregate(keys_, part, msg_);
  std::vector<std::uint64_t> fewer(ids_.begin(), ids_.end() - 1);
  EXPECT_FALSE(fast_verify_multisig(fewer, msg_, sig));
}

TEST(FastCryptoWire, SizeConstantsSane) {
  EXPECT_EQ(kSignatureWireBytes, 64u);
  EXPECT_EQ(kPublicKeyWireBytes, 33u);
}

}  // namespace
}  // namespace jenga::crypto
