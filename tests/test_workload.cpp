// Synthetic trace generator: Fig. 3 calibration and executable bytecode.
#include <gtest/gtest.h>

#include "ledger/portable_state.hpp"
#include "vm/interpreter.hpp"
#include "workload/trace.hpp"

namespace jenga::workload {
namespace {

TraceGenerator make_gen(std::uint64_t seed = 1) {
  TraceConfig cfg;
  cfg.num_contracts = 50;
  cfg.num_accounts = 1000;
  return TraceGenerator(cfg, Rng(seed));
}

TEST(Trace, ContractsGeneratedWithRealCode) {
  auto gen = make_gen();
  ASSERT_EQ(gen.contracts().size(), 50u);
  for (const auto& c : gen.contracts()) {
    EXPECT_FALSE(c->functions.empty());
    EXPECT_GT(c->code_size_bytes(), 100u);
    for (const auto& f : c->functions) {
      ASSERT_FALSE(f.code.empty());
      EXPECT_EQ(f.code.back().op, vm::Op::kReturn);
    }
  }
}

TEST(Trace, TrendsRampWithHeight) {
  auto gen = make_gen();
  EXPECT_LT(gen.expected_contract_ratio(0), gen.expected_contract_ratio(1'000'000));
  EXPECT_LT(gen.expected_steps(0), gen.expected_steps(1'000'000));
  EXPECT_LT(gen.expected_contracts(0), gen.expected_contracts(1'000'000));
  // Saturation past the horizon.
  EXPECT_EQ(gen.expected_steps(1'000'000), gen.expected_steps(2'000'000));
}

TEST(Trace, WindowStatsMatchLateTrendTargets) {
  auto gen = make_gen(7);
  const auto st = sample_window(gen, 1'000'000, 4000);
  EXPECT_NEAR(st.contract_tx_ratio, 0.72, 0.04);  // Fig. 3a: ~70%
  EXPECT_NEAR(st.avg_steps, 10.0, 1.5);           // Fig. 3c: ~10
  EXPECT_NEAR(st.avg_contracts, 4.7, 0.7);        // Fig. 3d: ~4.7
}

TEST(Trace, WindowStatsEarlyLowerThanLate) {
  auto gen = make_gen(8);
  const auto early = sample_window(gen, 0, 4000);
  const auto late = sample_window(gen, 1'000'000, 4000);
  EXPECT_LT(early.contract_tx_ratio, late.contract_tx_ratio);
  EXPECT_LT(early.avg_steps, late.avg_steps);
  EXPECT_LT(early.avg_contracts, late.avg_contracts);
}

TEST(Trace, ContractTxWellFormed) {
  auto gen = make_gen(3);
  for (int i = 0; i < 200; ++i) {
    const auto tx = gen.contract_tx(500'000, 0);
    EXPECT_EQ(tx.kind, ledger::TxKind::kContractCall);
    EXPECT_FALSE(tx.hash.is_zero());
    EXPECT_GE(tx.step_count(), tx.distinct_contracts());
    EXPECT_GE(tx.distinct_contracts(), 1u);
    EXPECT_LE(tx.distinct_contracts(), 8u);
    EXPECT_LE(tx.step_count(), 24u);
    // Declared contracts are distinct.
    auto sorted = tx.contracts;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    // Every step's slot is within the declared list.
    for (const auto& s : tx.steps) EXPECT_LT(s.contract_slot, tx.contracts.size());
  }
}

TEST(Trace, EveryDeclaredContractIsUsed) {
  auto gen = make_gen(4);
  for (int i = 0; i < 100; ++i) {
    const auto tx = gen.contract_tx(1'000'000, 0);
    std::vector<bool> used(tx.contracts.size(), false);
    for (const auto& s : tx.steps) used[s.contract_slot] = true;
    for (std::size_t c = 0; c < used.size(); ++c) EXPECT_TRUE(used[c]) << "slot " << c;
  }
}

TEST(Trace, GeneratedTxExecutesOnVm) {
  auto gen = make_gen(5);
  for (int i = 0; i < 50; ++i) {
    const auto tx = gen.contract_tx(800'000, 0);
    // Assemble declared state exactly as a Jenga execution channel would.
    ledger::PortableState state;
    for (std::size_t s = 0; s < tx.contracts.size(); ++s)
      state.contracts[tx.contracts[s]] = gen.initial_state(tx.contracts[s].value);
    for (auto a : tx.accounts) state.balances[a] = 1'000'000;
    ledger::PortableStateView view(std::move(state));
    std::vector<const vm::ContractLogic*> logic;
    for (auto c : tx.contracts) logic.push_back(gen.contracts()[c.value].get());
    vm::ExecLimits limits;
    limits.gas_limit = 100'000'000;
    vm::Interpreter interp(logic, view, limits);
    const auto result = interp.run(tx.sender, tx.steps);
    EXPECT_TRUE(result.ok()) << vm::exec_status_name(result.status);
    EXPECT_GT(result.gas_used, 0u);
  }
}

TEST(Trace, TransfersWellFormed) {
  auto gen = make_gen(6);
  for (int i = 0; i < 100; ++i) {
    const auto tx = gen.transfer_tx(0);
    EXPECT_EQ(tx.kind, ledger::TxKind::kTransfer);
    EXPECT_NE(tx.sender, tx.to);
    EXPECT_GT(tx.amount, 0u);
  }
}

TEST(Trace, DeployTxCarriesLogic) {
  auto gen = make_gen(9);
  const auto tx = gen.deploy_tx(3, 0);
  EXPECT_EQ(tx.kind, ledger::TxKind::kDeploy);
  ASSERT_NE(tx.logic, nullptr);
  EXPECT_EQ(tx.logic->id, ContractId{3});
  EXPECT_EQ(tx.initial_state_entries, gen.initial_state(3).size());
}

TEST(Trace, InitialStateDeterministic) {
  auto gen = make_gen(10);
  EXPECT_EQ(gen.initial_state(5), gen.initial_state(5));
  EXPECT_NE(gen.initial_state(5), gen.initial_state(6));
}

TEST(Trace, DeterministicPerSeed) {
  auto g1 = make_gen(11);
  auto g2 = make_gen(11);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(g1.contract_tx(100, 0).hash, g2.contract_tx(100, 0).hash);
}

TEST(Trace, DifferentSeedsDiffer) {
  auto g1 = make_gen(12);
  auto g2 = make_gen(13);
  int same = 0;
  for (int i = 0; i < 20; ++i) same += g1.contract_tx(100, 0).hash == g2.contract_tx(100, 0).hash;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace jenga::workload
