// Causal trace DAG + flight recorder tests (DESIGN.md §11).
//
// Pins the acceptance criteria of the observability layer:
//   - passivity: ledger digest, admission digest and metrics snapshot are
//     bit-identical with tracing on vs off, at exec workers {1,4}, on Jenga
//     and all three baselines;
//   - exactness: every finished transaction's critical path partitions
//     [submit, finish] into queue + link + service with zero residue, and
//     reconciles exactly with the four PR 3 phase intervals;
//   - DAG shape: lineages are acyclic (ids strictly ascending, parent < id);
//   - export: cspan lines and per-tx dag_* fields pass the shared validator,
//     and the chrome://tracing view is well-formed;
//   - flight recorder: a scripted per-shard partition that wedges 2PC and a
//     forced invariant violation each produce a causally-ordered dump with
//     the offending transaction's lineage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/genesis.hpp"
#include "harness/runner.hpp"
#include "ledger/transaction.hpp"
#include "security/fault_injector.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/trace.hpp"

namespace jenga {
namespace {

using harness::RunConfig;
using harness::RunResult;
using harness::SystemKind;
using telemetry::CausalTracer;
using telemetry::FlightEvent;
using telemetry::FlightRecorder;

Hash256 test_hash(std::uint8_t tag) {
  Hash256 h{};
  h.bytes[0] = tag;
  return h;
}

// ---------------------------------------------------------------------------
// CausalTracer unit tests

TEST(CausalTracer, SpanIdsAscendAndParentIsCurrentContext) {
  CausalTracer tracer;
  tracer.enable(true);
  std::uint64_t ctx = 0;
  tracer.bind_context(&ctx);

  const std::uint64_t s1 = tracer.begin_span(1, telemetry::kClientNode, 0, 100, 150);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(tracer.span(s1)->parent, 0u);
  tracer.note_arrival(s1, 250);

  ctx = s1;  // as if inside s1's delivery handler
  const std::uint64_t s2 = tracer.begin_span(2, 0, 1, 300, 300);
  EXPECT_EQ(s2, 2u);
  EXPECT_EQ(tracer.span(s2)->parent, s1);
  EXPECT_LT(tracer.span(s2)->parent, s2);  // acyclic by construction
  tracer.note_arrival(s2, 400);

  // Duplicate deliveries keep the earliest arrival.
  tracer.note_arrival(s2, 380);
  EXPECT_EQ(tracer.span(s2)->arrive, 380);
  tracer.note_arrival(s2, 420);
  EXPECT_EQ(tracer.span(s2)->arrive, 380);
}

TEST(CausalTracer, DisabledAndAtCapacityReturnNoSpan) {
  CausalTracer tracer;
  EXPECT_EQ(tracer.begin_span(1, 0, 1, 0, 0), 0u);  // disabled
  tracer.enable(true);
  tracer.set_capacity(2);
  EXPECT_NE(tracer.begin_span(1, 0, 1, 0, 0), 0u);
  EXPECT_NE(tracer.begin_span(1, 0, 1, 0, 0), 0u);
  EXPECT_EQ(tracer.begin_span(1, 0, 1, 0, 0), 0u);  // over capacity: truncate
  EXPECT_EQ(tracer.spans_dropped(), 1u);
  EXPECT_EQ(tracer.span_count(), 2u);
}

TEST(CausalTracer, CriticalPathDecomposesExactly) {
  CausalTracer tracer;
  tracer.enable(true);
  std::uint64_t ctx = 0;
  tracer.bind_context(&ctx);
  const Hash256 tx = test_hash(7);

  // submit(100) → hop1 [send 100, depart 150, arrive 250]
  //             → hop2 [send 300, depart 300, arrive 400] → finish(450)
  const std::uint64_t s1 = tracer.begin_span(1, telemetry::kClientNode, 0, 100, 150);
  tracer.note_arrival(s1, 250);
  ctx = s1;
  tracer.tx_anchor(tx, telemetry::AnchorKind::kSubmit, 0, 100);
  const std::uint64_t s2 = tracer.begin_span(2, 0, 1, 300, 300);
  tracer.note_arrival(s2, 400);
  ctx = s2;
  tracer.tx_anchor(tx, telemetry::AnchorKind::kFinish, 1, 450);

  const auto cp = tracer.critical_path(tx, 100, 450);
  ASSERT_TRUE(cp.valid);
  ASSERT_EQ(cp.hops.size(), 2u);
  EXPECT_EQ(cp.hops[0].span->id, s1);
  EXPECT_EQ(cp.hops[1].span->id, s2);
  EXPECT_EQ(cp.total, 350);
  EXPECT_EQ(cp.queue, 50);    // 50 + 0
  EXPECT_EQ(cp.link, 200);    // 100 + 100
  EXPECT_EQ(cp.service, 100); // 0 pre-gap + 50 inter-hop + 50 tail
  EXPECT_EQ(cp.ingress_wait, 0);
  EXPECT_EQ(cp.tail, 50);
  EXPECT_EQ(cp.queue + cp.link + cp.service, cp.total);

  // Lineage covers both hops, ascending.
  const auto ids = tracer.lineage(tx, 100);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], s1);
  EXPECT_EQ(ids[1], s2);
}

TEST(CausalTracer, UnfinishedTxHasNoCriticalPath) {
  CausalTracer tracer;
  tracer.enable(true);
  const Hash256 tx = test_hash(9);
  tracer.tx_anchor(tx, telemetry::AnchorKind::kSubmit, 0, 10);
  EXPECT_FALSE(tracer.critical_path(tx, 10, 500).valid);
}

// ---------------------------------------------------------------------------
// FlightRecorder unit tests

FlightEvent make_event(SimTime at, std::uint32_t node, FlightEvent::Kind kind) {
  FlightEvent e;
  e.at = at;
  e.node = node;
  e.kind = kind;
  return e;
}

TEST(FlightRecorderUnit, RingKeepsLastNAndDumpIsTimeOrdered) {
  FlightRecorder rec;
  rec.configure(2, 3);
  ASSERT_TRUE(rec.enabled());
  // Five events on node 0: the ring keeps the newest three.
  for (SimTime t = 1; t <= 5; ++t)
    rec.record(0, make_event(t * 100, 0, FlightEvent::Kind::kSend));
  // Interleave node 1 and the client ring.
  rec.record(1, make_event(250, 1, FlightEvent::Kind::kDeliver));
  rec.record(telemetry::kClientNode, make_event(50, telemetry::kClientNode,
                                                FlightEvent::Kind::kAdmission));
  EXPECT_EQ(rec.events_recorded(), 7u);

  ASSERT_TRUE(rec.trigger("unit.test"));
  ASSERT_EQ(rec.dumps().size(), 1u);
  const auto& dump = rec.dumps().front();
  EXPECT_EQ(dump.reason, "unit.test");

  // Window = 3 (node 0, newest) + 1 (node 1) + 1 (client), merged by time.
  std::istringstream in(dump.contents);
  std::string err;
  telemetry::TraceLintSummary sum;
  ASSERT_TRUE(telemetry::validate_trace_stream(in, &err, &sum)) << err;
  EXPECT_EQ(sum.flight_lines, 5u);
  EXPECT_NE(dump.contents.find("\"at_us\":50"), std::string::npos);   // client kept
  EXPECT_EQ(dump.contents.find("\"at_us\":100"), std::string::npos);  // overwritten
  EXPECT_NE(dump.contents.find("\"at_us\":500"), std::string::npos);  // newest kept
}

TEST(FlightRecorderUnit, OneDumpPerReasonBoundedOverall) {
  FlightRecorder rec;
  rec.configure(1, 4);
  rec.set_max_dumps(2);
  rec.record(0, make_event(10, 0, FlightEvent::Kind::kSend));
  EXPECT_TRUE(rec.trigger("a"));
  EXPECT_FALSE(rec.trigger("a"));  // repeat reason: counted, not dumped
  EXPECT_TRUE(rec.trigger("b"));
  EXPECT_FALSE(rec.trigger("c"));  // over max_dumps
  EXPECT_EQ(rec.triggers(), 4u);
  EXPECT_EQ(rec.dumps().size(), 2u);
}

TEST(FlightRecorderUnit, DisabledRecorderIgnoresEverything) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  rec.record(0, make_event(10, 0, FlightEvent::Kind::kSend));
  EXPECT_FALSE(rec.trigger("x"));
  EXPECT_TRUE(rec.dumps().empty());
  EXPECT_EQ(rec.events_recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Full-run passivity: tracing must not perturb any determinism witness.

RunConfig traced_run(SystemKind kind, std::uint32_t workers, bool traced) {
  RunConfig cfg;
  cfg.kind = kind;
  cfg.num_shards = 4;
  cfg.nodes_per_shard = 8;
  cfg.contract_txs = 100;
  cfg.transfer_txs = 30;
  cfg.max_sim_time = 900 * kSecond;
  cfg.exec_workers = workers;
  cfg.trace.num_contracts = 1000;
  cfg.trace.num_accounts = 2000;
  cfg.trace.max_steps = 12;
  cfg.trace.max_contracts_per_tx = 6;
  // Open loop so the admission digest is part of the witness set.
  cfg.arrival.mode = workload::ArrivalMode::kPoisson;
  cfg.arrival.rate_tps = 40.0;
  cfg.mempool.capacity = 64;
  cfg.mempool.ttl = 120 * kSecond;
  cfg.max_inflight = 128;
  if (traced) {
    cfg.causal_trace = true;
    cfg.flight_events_per_node = 32;
  }
  return cfg;
}

class CausalPassivity : public ::testing::TestWithParam<SystemKind> {};

TEST_P(CausalPassivity, WitnessesIdenticalTracedVsUntraced) {
  const RunResult plain = run_experiment(traced_run(GetParam(), 1, false));
  const RunResult traced1 = run_experiment(traced_run(GetParam(), 1, true));
  const RunResult traced4 = run_experiment(traced_run(GetParam(), 4, true));
  ASSERT_TRUE(plain.ingress.enabled);

  EXPECT_EQ(traced1.ledger_digest, plain.ledger_digest);
  EXPECT_EQ(traced4.ledger_digest, plain.ledger_digest);
  EXPECT_EQ(traced1.ingress.admission_digest, plain.ingress.admission_digest);
  EXPECT_EQ(traced4.ingress.admission_digest, plain.ingress.admission_digest);
  EXPECT_EQ(traced1.telemetry->registry.to_json(), plain.telemetry->registry.to_json());
  EXPECT_EQ(traced4.telemetry->registry.to_json(), plain.telemetry->registry.to_json());

  // The traced runs actually traced something.
  EXPECT_EQ(plain.telemetry->causal.span_count(), 0u);
  EXPECT_GT(traced1.telemetry->causal.span_count(), 0u);
  EXPECT_GT(traced1.telemetry->flight.events_recorded(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, CausalPassivity,
                         ::testing::Values(SystemKind::kJenga, SystemKind::kCxFunc,
                                           SystemKind::kSingleShard, SystemKind::kPyramid),
                         [](const auto& info) {
                           std::string name = harness::system_name(info.param);
                           std::erase_if(name, [](unsigned char c) {
                             return std::isalnum(c) == 0;
                           });
                           return name;
                         });

// ---------------------------------------------------------------------------
// Critical-path exactness, DAG shape and export schema on a real run.

TEST(CausalRun, CriticalPathExactAndLineageAcyclic) {
  const RunResult r = run_experiment(traced_run(SystemKind::kJenga, 1, true));
  const auto& causal = r.telemetry->causal;
  std::size_t checked = 0;
  for (const auto& [hash, trace] : r.telemetry->tracer.traces()) {
    if (!trace.done) continue;
    const auto cp = causal.critical_path(hash, trace.submit, trace.finish);
    ASSERT_TRUE(cp.valid);

    // Exact partition of the end-to-end latency…
    EXPECT_EQ(cp.total, trace.finish - trace.submit);
    EXPECT_EQ(cp.queue + cp.link + cp.service, cp.total);
    EXPECT_LE(cp.ingress_wait, cp.service);
    EXPECT_LE(cp.tail, cp.service);
    // …that reconciles with the four PR 3 phase intervals (same span).
    const auto iv = trace.intervals();
    SimTime interval_sum = 0;
    for (const SimTime v : iv) interval_sum += v;
    EXPECT_EQ(interval_sum, cp.total);

    // Hops are chronological and internally ordered.
    SimTime prev = trace.submit;
    for (const auto& hop : cp.hops) {
      ASSERT_NE(hop.span, nullptr);
      EXPECT_TRUE(hop.span->delivered);
      EXPECT_GE(hop.span->send, prev);
      EXPECT_LE(hop.span->send, hop.span->depart);
      EXPECT_LE(hop.span->depart, hop.span->arrive);
      EXPECT_GE(hop.service_before, 0);
      prev = hop.span->arrive;
    }

    // The full DAG is acyclic: ids strictly ascend, every parent precedes
    // its child, and every critical-path hop is in the lineage.
    const auto ids = causal.lineage(hash, trace.submit);
    std::uint64_t last = 0;
    for (const std::uint64_t id : ids) {
      EXPECT_GT(id, last);
      const auto* s = causal.span(id);
      ASSERT_NE(s, nullptr);
      EXPECT_LT(s->parent, id);
      last = id;
    }
    for (const auto& hop : cp.hops)
      EXPECT_TRUE(std::find(ids.begin(), ids.end(), hop.span->id) != ids.end());
    ++checked;
  }
  EXPECT_GT(checked, 20u) << "too few finished transactions to be meaningful";
}

TEST(CausalRun, ExportCarriesSpansAndValidates) {
  const RunResult a = run_experiment(traced_run(SystemKind::kJenga, 1, true));
  const RunResult b = run_experiment(traced_run(SystemKind::kJenga, 1, true));

  std::ostringstream ja, jb;
  a.telemetry->export_jsonl(ja);
  b.telemetry->export_jsonl(jb);
  EXPECT_EQ(ja.str(), jb.str());  // traced export is itself deterministic

  std::istringstream in(ja.str());
  std::string err;
  telemetry::TraceLintSummary sum;
  ASSERT_TRUE(telemetry::validate_trace_stream(in, &err, &sum)) << err;
  EXPECT_GT(sum.cspan_lines, 0u);
  EXPECT_GT(sum.dag_tx_lines, 0u);
  EXPECT_GT(sum.tx_lines, 0u);

  // chrome://tracing view: complete events plus flow binding edges.
  std::ostringstream chrome;
  a.telemetry->export_chrome(chrome);
  const std::string view = chrome.str();
  EXPECT_NE(view.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(view.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(view.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(view.find("\"ph\":\"f\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder on real failures.

TEST(FlightRecorderRun, TwoPcStuckUnderPartitionDumpsLineage) {
  // Same wedge recipe as TwoPcWatchdog.PartitionedTransferIsFlaggedStuck:
  // split the two shards for the rest of the run so every cross-shard 2PC
  // prepare is partition-blocked after its debit committed — but with the
  // causal tracer and flight recorder attached, so the watchdog's trigger
  // captures a post-mortem window.
  core::JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;
  cfg.seed = 11;
  cfg.twopc_stuck_timeout = 10 * kSecond;
  cfg.pending_timeout = 600 * kSecond;

  workload::TraceConfig tc;
  tc.num_accounts = 400;
  workload::TraceGenerator gen(tc, Rng(3));
  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  security::FaultInjector injector(sim, net, system);

  telemetry::Telemetry telem;
  telem.causal.enable(true);
  telem.flight.configure(16, 64);
  net.set_telemetry(&telem);
  system.set_telemetry(&telem);
  system.start();

  security::PartitionWindow window;
  window.start = 2 * kSecond;
  window.end = 600 * kSecond;
  window.isolated = system.lattice().shard_members(ShardId{1});
  security::FaultPlan plan;
  plan.partitions.push_back(window);
  injector.arm(plan);

  for (int i = 0; i < 80; ++i) {
    sim.run_until(sim.now() + 500 * kMillisecond);
    system.submit(std::make_shared<ledger::Transaction>(gen.transfer_tx(sim.now())));
  }
  sim.run_until(120 * kSecond);

  ASSERT_GT(system.twopc_stuck_now(), 0u) << "no transfer got wedged";
  EXPECT_GT(telem.flight.triggers(), 0u);
  ASSERT_FALSE(telem.flight.dumps().empty());
  const telemetry::FlightDump& dump = telem.flight.dumps().front();
  EXPECT_EQ(dump.reason, "twopc.stuck");

  // The dump validates under the shared schema checker: flight events in
  // causal (time) order, and the offending tx's lineage attached.
  std::istringstream in(dump.contents);
  std::string err;
  telemetry::TraceLintSummary sum;
  EXPECT_TRUE(telemetry::validate_trace_stream(in, &err, &sum)) << err;
  EXPECT_GT(sum.flight_lines, 0u);
  EXPECT_GT(sum.lineage_lines, 0u) << "stuck tx lineage missing from the dump";

  net.set_telemetry(nullptr);
  system.set_telemetry(nullptr);
}

TEST(FlightRecorderRun, InvariantViolationDumpIsWrittenToDisk) {
  // Isolate half the nodes for the whole run: at least one shard loses
  // quorum, submitted transactions end in limbo, and the post-run audit
  // fails — which must fire the recorder and write the dump file.
  RunConfig cfg = traced_run(SystemKind::kJenga, 1, true);
  cfg.num_shards = 2;
  cfg.contract_txs = 60;
  cfg.transfer_txs = 60;
  cfg.max_sim_time = 120 * kSecond;
  cfg.flight_dump_path = ::testing::TempDir() + "causal_flight";
  security::PartitionWindow window;
  window.start = 2 * kSecond;
  window.end = 1000 * kSecond;
  for (std::uint32_t n = 8; n < 16; ++n) window.isolated.push_back(NodeId{n});
  cfg.faults_plan.partitions.push_back(window);

  const RunResult r = run_experiment(cfg);
  ASSERT_TRUE(r.ingress.invariants_audited);
  ASSERT_FALSE(r.ingress.invariants.ok()) << "partition failed to break the run";

  const auto& dumps = r.telemetry->flight.dumps();
  ASSERT_FALSE(dumps.empty());
  bool found = false;
  for (std::size_t i = 0; i < dumps.size(); ++i) {
    if (dumps[i].reason == "invariant.violation") found = true;
    std::istringstream in(dumps[i].contents);
    std::string err;
    telemetry::TraceLintSummary sum;
    EXPECT_TRUE(telemetry::validate_trace_stream(in, &err, &sum)) << err;
    EXPECT_GT(sum.flight_lines, 0u);
    // The on-disk artifact mirrors the in-memory dump.
    std::ifstream file(cfg.flight_dump_path + "-" + std::to_string(i) + ".jsonl");
    ASSERT_TRUE(file.good()) << "dump file " << i << " missing";
    std::stringstream disk;
    disk << file.rdbuf();
    EXPECT_EQ(disk.str(), dumps[i].contents);
  }
  EXPECT_TRUE(found) << "no invariant.violation dump captured";
}

}  // namespace
}  // namespace jenga
