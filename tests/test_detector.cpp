// Phi-accrual failure detector unit tests (src/security/detector.hpp,
// DESIGN.md §14): suspicion grows with silence and only actuates when armed,
// arrivals clear it, the degradation signal tracks network-wide inflation,
// and the adaptive view-timeout / pull-cadence outputs respect their bounds.
#include <gtest/gtest.h>

#include "security/detector.hpp"
#include "simnet/simulator.hpp"

namespace jenga::security {
namespace {

constexpr NodeId kObserver{0};
constexpr NodeId kPeer{1};

/// Feeds `n` arrivals from kPeer to kObserver spaced `gap` apart, advancing
/// the simulated clock alongside.
void feed(sim::Simulator& sim, FailureDetector& d, int n, SimTime gap,
          NodeId from = kPeer, NodeId to = kObserver) {
  for (int i = 0; i < n; ++i) {
    sim.run_until(sim.now() + gap);
    d.on_arrival(from, to, sim.now());
  }
}

TEST(FailureDetector, PhiGrowsWithSilence) {
  sim::Simulator sim;
  FailureDetector d(sim);
  feed(sim, d, 20, 100 * kMillisecond);

  // Right after an arrival there is nothing to suspect.
  EXPECT_EQ(d.phi(kObserver, kPeer), 0.0);

  // One missed heartbeat is barely suspicious; ten are damning.
  sim.run_until(sim.now() + 200 * kMillisecond);
  const double phi_2x = d.phi(kObserver, kPeer);
  sim.run_until(sim.now() + 800 * kMillisecond);
  const double phi_10x = d.phi(kObserver, kPeer);
  EXPECT_GT(phi_2x, 0.0);
  EXPECT_GT(phi_10x, phi_2x);
  EXPECT_GE(phi_10x, 8.0);

  // Direction matters: the reverse pair never heard anything.
  EXPECT_EQ(d.phi(kPeer, kObserver), 0.0);
}

TEST(FailureDetector, NoSuspicionBelowMinSamples) {
  sim::Simulator sim;
  DetectorConfig cfg;
  cfg.min_samples = 8;
  FailureDetector d(sim, cfg);
  d.arm(true);
  feed(sim, d, 4, 100 * kMillisecond);  // 3 intervals < min_samples
  sim.run_until(sim.now() + 60 * kSecond);
  EXPECT_EQ(d.phi(kObserver, kPeer), 0.0);
  EXPECT_FALSE(d.suspect(kObserver, kPeer));
}

TEST(FailureDetector, UnarmedSamplesButNeverActuates) {
  sim::Simulator sim;
  FailureDetector d(sim);
  feed(sim, d, 20, 100 * kMillisecond);
  sim.run_until(sim.now() + 60 * kSecond);

  // Sampling ran, phi is computable and huge...
  EXPECT_GT(d.stats().samples, 0u);
  EXPECT_GE(d.phi(kObserver, kPeer), 8.0);
  // ...but nothing actuates: the bit-identity contract for clean runs.
  EXPECT_FALSE(d.suspect(kObserver, kPeer));
  EXPECT_FALSE(d.any_suspected());
  EXPECT_FALSE(d.degraded());
  EXPECT_EQ(d.view_timeout(kObserver, kPeer, 120 * kSecond), 120 * kSecond);
  EXPECT_EQ(d.pull_cadence(4), 4u);
  EXPECT_EQ(d.stats().suspicions, 0u);
}

TEST(FailureDetector, SuspicionTransitionsAndArrivalClears) {
  sim::Simulator sim;
  FailureDetector d(sim);
  d.arm(true);
  feed(sim, d, 20, 100 * kMillisecond);
  EXPECT_FALSE(d.suspect(kObserver, kPeer));

  sim.run_until(sim.now() + 10 * kSecond);
  EXPECT_TRUE(d.suspect(kObserver, kPeer));
  EXPECT_TRUE(d.any_suspected());
  EXPECT_EQ(d.stats().suspicions, 1u);
  EXPECT_EQ(d.stats().first_suspicion_at, sim.now());
  // Re-querying does not double count the transition.
  EXPECT_TRUE(d.suspect(kObserver, kPeer));
  EXPECT_EQ(d.stats().suspicions, 1u);

  // The peer speaks again: suspicion clears immediately.
  d.on_arrival(kPeer, kObserver, sim.now());
  EXPECT_FALSE(d.any_suspected());
  EXPECT_FALSE(d.suspect(kObserver, kPeer));
  EXPECT_EQ(d.stats().recoveries, 1u);
}

TEST(FailureDetector, AdaptiveViewTimeoutShrinksForSuspectAndRespectsFloor) {
  sim::Simulator sim;
  FailureDetector d(sim);
  d.arm(true);
  feed(sim, d, 20, 100 * kMillisecond);
  sim.run_until(sim.now() + 10 * kSecond);
  ASSERT_TRUE(d.suspect(kObserver, kPeer));

  // Suspected leader: 120s * 0.4 = 48s.
  EXPECT_EQ(d.view_timeout(kObserver, kPeer, 120 * kSecond), 48 * kSecond);
  // Floor: 3s * 0.4 would be 1.2s, clamped to the 2s floor.
  EXPECT_EQ(d.view_timeout(kObserver, kPeer, 3 * kSecond), 2 * kSecond);
  // A different (unsuspected) leader keeps the base timeout.
  EXPECT_EQ(d.view_timeout(kObserver, NodeId{9}, 120 * kSecond), 120 * kSecond);
}

TEST(FailureDetector, DegradedSignalGrowsTimeoutAndTightensPullCadence) {
  sim::Simulator sim;
  DetectorConfig cfg;
  cfg.warmup_samples = 64;
  FailureDetector d(sim, cfg);
  d.arm(true);

  // Healthy phase: enough traffic to finish warmup and pin a low baseline.
  feed(sim, d, 100, 10 * kMillisecond);
  EXPECT_FALSE(d.degraded());
  EXPECT_EQ(d.pull_cadence(4), 4u);

  // Gray phase: every inter-arrival inflates 20x; the EWMA floats well above
  // the healthy baseline.
  feed(sim, d, 60, 200 * kMillisecond);
  EXPECT_TRUE(d.degraded());
  EXPECT_EQ(d.pull_cadence(4), 2u);
  EXPECT_EQ(d.pull_cadence(1), 1u);  // floor: already every tick

  // Degraded but no individual suspect: timeout grows, bounded by the
  // ceiling (240s).
  EXPECT_EQ(d.view_timeout(kObserver, NodeId{9}, 120 * kSecond), 240 * kSecond);
  EXPECT_EQ(d.view_timeout(kObserver, NodeId{9}, 200 * kSecond), 240 * kSecond);

  // Recovery: the network speeds back up, the EWMA falls, the signal clears.
  feed(sim, d, 200, 10 * kMillisecond);
  EXPECT_FALSE(d.degraded());
  EXPECT_EQ(d.view_timeout(kObserver, NodeId{9}, 120 * kSecond), 120 * kSecond);
}

}  // namespace
}  // namespace jenga::security
