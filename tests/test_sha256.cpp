// SHA-256 against FIPS 180-4 / NIST CAVS vectors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"
#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

std::string digest_hex(std::string_view msg) { return to_hex(sha256(msg)); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  std::string msg(1000000, 'a');
  EXPECT_EQ(digest_hex(msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: exercises the path with no leftover buffer.
  std::string msg(64, 'x');
  Sha256 h;
  h.update(msg);
  const auto one_shot = h.finish();
  // Same data split awkwardly across updates must agree.
  Sha256 h2;
  h2.update(msg.substr(0, 1));
  h2.update(msg.substr(1, 62));
  h2.update(msg.substr(63));
  EXPECT_EQ(one_shot, h2.finish());
}

TEST(Sha256, IncrementalMatchesOneShotManySplits) {
  std::string msg;
  for (int i = 0; i < 300; ++i) msg += static_cast<char>('a' + i % 26);
  const auto expect = sha256(msg);
  for (std::size_t split = 1; split < msg.size(); split += 17) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.finish(), expect) << "split=" << split;
  }
}

TEST(Sha256, ResetReusable) {
  Sha256 h;
  h.update("abc");
  const auto first = h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish(), first);
}

TEST(Sha256, UpdateU64LittleEndian) {
  Sha256 a;
  a.update_u64(0x0102030405060708ULL);
  const std::uint8_t raw[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  Sha256 b;
  b.update(std::span<const std::uint8_t>(raw, 8));
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(Sha256, TaggedHashesAreDomainSeparated) {
  const std::uint8_t data[3] = {1, 2, 3};
  const auto a = sha256_tagged("tag-a", std::span<const std::uint8_t>(data, 3));
  const auto b = sha256_tagged("tag-b", std::span<const std::uint8_t>(data, 3));
  EXPECT_NE(a, b);
}

// 55/56/57 bytes straddle the padding boundary (56 leaves no room for the
// 8-byte length in the same block).
TEST(Sha256, PaddingBoundaryLengths) {
  EXPECT_EQ(digest_hex(std::string(55, 'a')),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(digest_hex(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
  EXPECT_EQ(digest_hex(std::string(57, 'a')),
            "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6");
}

}  // namespace
}  // namespace jenga::crypto
