// BFT consensus engine: agreement, liveness under crash faults, view change,
// certificate verification, and timing sanity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "consensus/bft.hpp"
#include "consensus/messages.hpp"
#include "crypto/sha256.hpp"

namespace jenga::consensus {
namespace {

struct ValuePayload : sim::Payload {
  explicit ValuePayload(std::uint64_t n) : n(n) {}
  std::uint64_t n;
};

ConsensusValue make_value(std::uint64_t height) {
  ConsensusValue v;
  crypto::Sha256 h;
  h.update("test-value");
  h.update_u64(height);
  v.digest = h.finish();
  v.size_bytes = 1024;
  v.data = std::make_shared<ValuePayload>(height);
  return v;
}

/// Proposes the canonical value for each height up to a cap; records decisions.
class TestApp : public BftApp {
 public:
  explicit TestApp(std::uint64_t max_heights) : max_heights_(max_heights) {}

  std::optional<ConsensusValue> propose(std::uint64_t height) override {
    if (height >= max_heights_) return std::nullopt;
    return make_value(height);
  }
  bool validate(std::uint64_t, const ConsensusValue&) override { return true; }
  void on_decide(std::uint64_t height, const ConsensusValue& value,
                 const QuorumCert& cert) override {
    decided.emplace_back(height, value.digest);
    last_cert = cert;
    decide_times.push_back(now_fn ? now_fn() : 0);
  }

  std::uint64_t max_heights_;
  std::vector<std::pair<std::uint64_t, Hash256>> decided;
  std::vector<SimTime> decide_times;
  QuorumCert last_cert;
  std::function<SimTime()> now_fn;
};

class BftHarness {
 public:
  BftHarness(std::size_t n, std::uint64_t heights, SimTime view_timeout = 5 * kSecond)
      : net_(sim_, sim::NetConfig{}, Rng(42)) {
    auto config = std::make_shared<BftConfig>();
    for (std::uint32_t i = 0; i < n; ++i) config->members.push_back(NodeId{i});
    config->view_timeout = view_timeout;
    for (std::uint32_t i = 0; i < n; ++i) {
      apps_.push_back(std::make_unique<TestApp>(heights));
      apps_.back()->now_fn = [this] { return sim_.now(); };
      replicas_.push_back(std::make_unique<Replica>(net_, NodeId{i}, config, *apps_.back()));
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      Replica* r = replicas_[i].get();
      net_.register_node(NodeId{i}, [r](const sim::Message& m) { r->on_message(m); });
    }
  }

  void start_all() {
    for (auto& r : replicas_) r->start();
  }

  void run(SimTime until) { sim_.run_until(until); }

  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<TestApp>> apps_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

TEST(Bft, FourNodesDecideSequence) {
  BftHarness h(4, 5);
  h.start_all();
  h.run(60 * kSecond);
  for (const auto& app : h.apps_) {
    ASSERT_EQ(app->decided.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
      EXPECT_EQ(app->decided[i].first, i);
      EXPECT_EQ(app->decided[i].second, make_value(i).digest);
    }
  }
}

TEST(Bft, AllReplicasAgree) {
  BftHarness h(7, 3);
  h.start_all();
  h.run(60 * kSecond);
  for (std::size_t i = 1; i < h.apps_.size(); ++i)
    EXPECT_EQ(h.apps_[i]->decided, h.apps_[0]->decided);
}

TEST(Bft, DecisionLatencyIsFiveHops) {
  // Small messages, 100 ms latency, 5 message legs per height: decide ≈ 500 ms
  // plus epsilon for serialization.
  BftHarness h(4, 1);
  h.start_all();
  h.run(10 * kSecond);
  ASSERT_FALSE(h.apps_[3]->decide_times.empty());
  const SimTime t = h.apps_[3]->decide_times[0];
  EXPECT_GE(t, 450 * kMillisecond);
  EXPECT_LE(t, 700 * kMillisecond);
}

TEST(Bft, SilentNonLeaderMinorityTolerated) {
  BftHarness h(4, 3);
  h.replicas_[3]->set_byzantine(ByzantineMode::kSilent);  // leader for h0 is node 0
  h.start_all();
  h.run(60 * kSecond);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(h.apps_[i]->decided.size(), 3u) << i;
  EXPECT_TRUE(h.apps_[3]->decided.empty());
}

TEST(Bft, SilentLeaderTriggersViewChange) {
  BftHarness h(4, 2, /*view_timeout=*/2 * kSecond);
  h.replicas_[0]->set_byzantine(ByzantineMode::kSilent);  // node 0 leads height 0
  h.start_all();
  h.run(120 * kSecond);
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_GE(h.apps_[i]->decided.size(), 2u) << "replica " << i;
    EXPECT_EQ(h.apps_[i]->decided[0].first, 0u);
  }
}

TEST(Bft, MuteProposerStallsOnlyItsOwnHeights) {
  // Node 1 votes but never proposes; heights led by node 1 need a view change.
  BftHarness h(4, 3, /*view_timeout=*/2 * kSecond);
  h.replicas_[1]->set_byzantine(ByzantineMode::kMuteProposer);
  h.start_all();
  h.run(120 * kSecond);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.apps_[i]->decided.size(), 3u) << i;
}

TEST(Bft, ConsecutiveDeadLeadersSkipped) {
  BftHarness h(7, 1, /*view_timeout=*/2 * kSecond);
  // Leaders for height 0 are members (0+view)%7: kill nodes 0 and 1.
  h.replicas_[0]->set_byzantine(ByzantineMode::kSilent);
  h.replicas_[1]->set_byzantine(ByzantineMode::kSilent);
  h.start_all();
  h.run(200 * kSecond);
  for (std::size_t i = 2; i < 7; ++i) EXPECT_EQ(h.apps_[i]->decided.size(), 1u) << i;
}

TEST(Bft, QuorumSizes) {
  for (auto [n, q] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 3}, {7, 5}, {10, 7}, {13, 9}, {100, 67}}) {
    BftHarness h(n, 0);
    EXPECT_EQ(h.replicas_[0]->quorum(), q) << "n=" << n;
  }
}

TEST(Bft, CertificateVerification) {
  BftHarness h(4, 1);
  h.start_all();
  h.run(10 * kSecond);
  ASSERT_FALSE(h.apps_[0]->decided.empty());
  QuorumCert cert = h.apps_[0]->last_cert;
  EXPECT_TRUE(h.replicas_[0]->verify_cert(cert));
  // Tampered digest must fail.
  QuorumCert bad = cert;
  bad.value_digest.bytes[0] ^= 1;
  EXPECT_FALSE(h.replicas_[0]->verify_cert(bad));
  // Dropping signers below quorum must fail.
  QuorumCert thin = cert;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < thin.sig.signers.size(); ++i) {
    if (thin.sig.signers[i] && ++kept > 2) thin.sig.signers[i] = false;
  }
  EXPECT_FALSE(h.replicas_[0]->verify_cert(thin));
}

TEST(Bft, DeterministicAcrossRuns) {
  std::vector<SimTime> first;
  for (int round = 0; round < 2; ++round) {
    BftHarness h(4, 4);
    h.start_all();
    h.run(60 * kSecond);
    if (round == 0) {
      first = h.apps_[0]->decide_times;
    } else {
      EXPECT_EQ(h.apps_[0]->decide_times, first);
    }
  }
}

TEST(Bft, NoProposalMeansNoProgressButNoCrash) {
  BftHarness h(4, 0);  // app never proposes
  h.start_all();
  h.run(3 * kSecond);
  for (const auto& app : h.apps_) EXPECT_TRUE(app->decided.empty());
}

TEST(Bft, LargeGroupDecides) {
  BftHarness h(40, 2);
  h.start_all();
  h.run(120 * kSecond);
  std::size_t complete = 0;
  for (const auto& app : h.apps_)
    if (app->decided.size() == 2) ++complete;
  EXPECT_EQ(complete, 40u);
}

TEST(Bft, StaleViewChangeAfterDecideIgnored) {
  // Regression: a view-change vote for a (height, view) that already decided
  // must not advance anyone's view at the current height — the stale-timer
  // generation guard and the height check both have to hold.
  BftHarness h(4, 3);
  h.start_all();
  h.run(2 * kSecond);  // height 0 decided at view 0
  ASSERT_GE(h.apps_[0]->decided.size(), 1u);
  for (std::size_t target = 0; target < 4; ++target) {
    for (std::size_t from = 0; from < 4; ++from) {
      auto payload = std::make_shared<ViewChangePayload>();
      payload->group = 0;
      payload->height = 0;  // stale: everyone is past height 0 already
      payload->new_view = 1;
      payload->member_index = from;
      sim::Message msg;
      msg.type = sim::MsgType::kBftViewChange;
      msg.from = NodeId{static_cast<std::uint32_t>(from)};
      msg.size_bytes = kViewChangeWireBytes;
      msg.payload = std::move(payload);
      h.replicas_[target]->on_message(msg);
    }
  }
  // Run long enough for the remaining heights to decide but shorter than the
  // idle view timeout at the final (never-proposed) height.
  h.run(4 * kSecond);
  for (const auto& r : h.replicas_) EXPECT_EQ(r->view(), 0u);
  for (const auto& app : h.apps_) {
    ASSERT_EQ(app->decided.size(), 3u);
    EXPECT_EQ(app->last_cert.view, 0u);  // every height decided without a view change
  }
}

TEST(Bft, EquivocatingLeaderRecoveredByViewChange) {
  BftHarness h(4, 2, /*view_timeout=*/2 * kSecond);
  h.replicas_[0]->set_byzantine(ByzantineMode::kEquivocator);  // leads height 0
  h.start_all();
  h.run(120 * kSecond);
  // The split proposals cannot reach quorum; the view change elects an honest
  // leader and both heights decide on every honest replica.
  for (std::size_t i = 1; i < 4; ++i) ASSERT_EQ(h.apps_[i]->decided.size(), 2u) << i;
  for (std::size_t i = 2; i < 4; ++i)
    EXPECT_EQ(h.apps_[i]->decided, h.apps_[1]->decided) << i;
  // At least the double-delivered victim observed the conflicting proposals.
  std::uint64_t detected = 0;
  for (const auto& r : h.replicas_) detected += r->stats().equivocations_detected;
  EXPECT_GE(detected, 1u);
}

TEST(Bft, VoteSpammerToleratedAndRejected) {
  BftHarness h(5, 3);  // quorum 3; four honest replicas carry the protocol
  h.replicas_[2]->set_byzantine(ByzantineMode::kVoteSpammer);
  h.start_all();
  h.run(60 * kSecond);
  for (std::size_t i : {0u, 1u, 3u, 4u})
    EXPECT_EQ(h.apps_[i]->decided.size(), 3u) << i;
  // Every junk vote bounced off a signature or digest check somewhere.
  std::uint64_t rejected = 0;
  for (const auto& r : h.replicas_) rejected += r->stats().invalid_votes_rejected;
  EXPECT_GT(rejected, 0u);
}

TEST(Bft, LaggardTolerated) {
  // Lag of view_timeout/3 = 2 s per vote: slower heights, no view changes
  // needed, everyone still decides everything.
  BftHarness h(4, 3, /*view_timeout=*/6 * kSecond);
  h.replicas_[2]->set_byzantine(ByzantineMode::kLaggard);
  h.start_all();
  h.run(120 * kSecond);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.apps_[i]->decided.size(), 3u) << i;
}

TEST(Bft, CrashedReplicaCatchesUpViaSync) {
  BftHarness h(4, 6);
  h.start_all();
  h.net_.set_node_down(NodeId{3}, true);
  h.run(30 * kSecond);  // the other three decide all heights meanwhile
  ASSERT_EQ(h.apps_[0]->decided.size(), 6u);
  EXPECT_LT(h.apps_[3]->decided.size(), 6u);

  h.net_.set_node_down(NodeId{3}, false);
  h.replicas_[3]->request_sync();
  h.run(60 * kSecond);
  EXPECT_EQ(h.apps_[3]->decided, h.apps_[0]->decided);
  EXPECT_GT(h.replicas_[3]->stats().sync_heights_applied, 0u);
  // Someone served the request.
  std::uint64_t served = 0;
  for (const auto& r : h.replicas_) served += r->stats().sync_responses_served;
  EXPECT_GT(served, 0u);
}

}  // namespace
}  // namespace jenga::consensus
