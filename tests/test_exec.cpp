// Deterministic parallel execution engine (src/exec/): conflict analysis over
// declared read/write sets, canonical greedy level scheduling, engine commit
// semantics (canonical order, conflict chaining), schedule-derived telemetry,
// and the headline acceptance property — same-seed runs of Jenga and every
// baseline are bit-identical (ledger digest AND metrics snapshot) across
// exec worker counts 1, 2 and 8.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/conflict.hpp"
#include "exec/engine.hpp"
#include "harness/runner.hpp"
#include "telemetry/metrics.hpp"
#include "vm/assembler.hpp"
#include "workload/trace.hpp"

namespace jenga::exec {
namespace {

using ledger::PortableState;

// ---------------------------------------------------------------------------
// Conflict analysis
// ---------------------------------------------------------------------------

TEST(Conflict, NormalizeSortsDedupsAndShadowsReads) {
  AccessSet s;
  s.writes = {5, 3, 5};
  s.reads = {7, 3, 7, 9};
  s.normalize();
  EXPECT_EQ(s.writes, (std::vector<ResourceKey>{3, 5}));
  // 3 is written too, so it behaves as a write and leaves the read set.
  EXPECT_EQ(s.reads, (std::vector<ResourceKey>{7, 9}));
}

TEST(Conflict, WriteWriteAndReadWriteConflictReadReadDoesNot) {
  AccessSet wx, wx2, rx, rx2, wy;
  wx.writes = {1};
  wx2.writes = {1};
  rx.reads = {1};
  rx2.reads = {1};
  wy.writes = {2};
  for (AccessSet* s : {&wx, &wx2, &rx, &rx2, &wy}) s->normalize();

  EXPECT_TRUE(conflicts(wx, wx2));   // write-write
  EXPECT_TRUE(conflicts(wx, rx));    // write-read
  EXPECT_TRUE(conflicts(rx, wx));    // read-write
  EXPECT_FALSE(conflicts(rx, rx2));  // read-read shares fine
  EXPECT_FALSE(conflicts(wx, wy));   // disjoint
}

TEST(Conflict, DeclaredAccessCoversContractsAccountsAndSender) {
  ledger::Transaction tx;
  tx.contracts = {ContractId{2}, ContractId{5}};
  tx.accounts = {AccountId{7}};
  tx.sender = AccountId{9};
  const AccessSet s = declared_access(tx);
  EXPECT_TRUE(s.reads.empty());  // conservative: everything declared may be written
  const std::vector<ResourceKey> want{account_key(AccountId{7}), account_key(AccountId{9}),
                                      contract_key(ContractId{2}), contract_key(ContractId{5})};
  auto sorted = want;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(s.writes, sorted);
}

TEST(Conflict, ScheduleAssignsCanonicalGreedyLevels) {
  // T0 w{x}  T1 w{x}  T2 r{x}  T3 r{x}  T4 w{x}  T5 w{y}
  auto mk = [](std::vector<ResourceKey> w, std::vector<ResourceKey> r) {
    AccessSet s;
    s.writes = std::move(w);
    s.reads = std::move(r);
    s.normalize();
    return s;
  };
  const std::vector<AccessSet> batch{mk({1}, {}), mk({1}, {}), mk({}, {1}),
                                     mk({}, {1}), mk({1}, {}), mk({2}, {})};
  const Schedule sched = build_schedule(batch);
  EXPECT_EQ(sched.level, (std::vector<std::uint32_t>{0, 1, 2, 2, 3, 0}));
  ASSERT_EQ(sched.depth(), 4u);
  EXPECT_EQ(sched.levels[0], (std::vector<std::uint32_t>{0, 5}));
  EXPECT_EQ(sched.levels[2], (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(sched.max_width, 2u);
  // Spanning predecessor subset: T1 after the writer T0; both readers hang
  // off T1; the next writer T4 clears the write (T1) and the last reader (T3).
  EXPECT_EQ(sched.preds[1], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(sched.preds[2], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(sched.preds[3], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(sched.preds[4], (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(sched.dep_edges, 5u);
}

TEST(Conflict, ResourceKeyCategoriesNeverCollide) {
  EXPECT_NE(contract_key(ContractId{42}), account_key(AccountId{42}));
  Hash256 h{};
  h.bytes[0] = 42;
  EXPECT_NE(tx_key(h), contract_key(ContractId{42}));
  EXPECT_NE(tx_key(h), account_key(AccountId{42}));
}

// ---------------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------------

/// A contract whose single function adds `arg0` into its own state[0].
std::shared_ptr<const vm::ContractLogic> add_contract(ContractId id) {
  auto logic = std::make_shared<vm::ContractLogic>();
  logic->id = id;
  auto code = vm::assemble(R"(
    PUSH 0      ; store key
    PUSH 0
    SLOAD       ; current value
    PUSH 0
    ARG         ; arg[0]
    ADD
    SSTORE
    RETURN
  )");
  EXPECT_TRUE(code.ok());
  logic->functions.push_back({"add", code.value()});
  return logic;
}

/// One task calling `logic` once with `arg`, over a private bundle holding the
/// contract's state (initially {0: start}) and the sender's balance.
Task make_add_task(const std::shared_ptr<const vm::ContractLogic>& logic, std::uint64_t arg,
                   std::uint64_t start, std::uint8_t tag) {
  Task t;
  t.id.bytes[0] = tag;
  t.sender = AccountId{100 + tag};  // distinct: only the contract can conflict
  t.logic = {logic.get()};
  t.own_steps.push_back(vm::CallStep{0, 0, {arg}});
  t.input.contracts[logic->id] = ledger::ContractState{{0, start}};
  t.input.balances[t.sender] = 1000;
  t.access.writes = {contract_key(logic->id), account_key(t.sender)};
  t.access.normalize();
  return t;
}

TEST(Engine, ResultsComeBackInInputOrderForEveryWorkerCount) {
  auto batch_for = [](std::size_t n) {
    std::vector<std::shared_ptr<const vm::ContractLogic>> logics;
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < n; ++i) {
      logics.push_back(add_contract(ContractId{i}));
      tasks.push_back(make_add_task(logics.back(), i + 1, 10, static_cast<std::uint8_t>(i)));
    }
    return std::pair(std::move(logics), std::move(tasks));
  };
  for (const std::uint32_t workers : {1u, 2u, 8u}) {
    auto [logics, tasks] = batch_for(16);
    EngineOptions eo;
    eo.workers = workers;
    Engine engine(eo);
    const auto results = engine.run_batch(std::move(tasks));
    ASSERT_EQ(results.size(), 16u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].vm.ok());
      // Slot i really holds task i's effect: state[0] = 10 + (i + 1).
      EXPECT_EQ(results[i].output.contracts.at(ContractId{i}).at(0), 10 + i + 1);
    }
    EXPECT_EQ(engine.last_batch().tasks, 16u);
    EXPECT_EQ(engine.last_batch().levels, 1u);  // disjoint: all parallel
    EXPECT_EQ(engine.last_batch().max_width, 16u);
  }
}

TEST(Engine, ChainConflictsAppliesPredecessorOutputsInCanonicalOrder) {
  // Three tasks on ONE contract, each adding its arg to state[0] (start 100).
  // With chaining the batch is serially equivalent: 100+1+2+3 after the last.
  auto logic = add_contract(ContractId{7});
  for (const std::uint32_t workers : {1u, 4u}) {
    std::vector<Task> tasks;
    for (std::uint64_t arg = 1; arg <= 3; ++arg)
      tasks.push_back(make_add_task(logic, arg, 100, static_cast<std::uint8_t>(arg)));
    EngineOptions eo;
    eo.workers = workers;
    eo.chain_conflicts = true;
    Engine engine(eo);
    const auto results = engine.run_batch(std::move(tasks));
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].output.contracts.at(ContractId{7}).at(0), 101u);
    EXPECT_EQ(results[1].output.contracts.at(ContractId{7}).at(0), 103u);
    EXPECT_EQ(results[2].output.contracts.at(ContractId{7}).at(0), 106u);
    EXPECT_EQ(engine.last_batch().levels, 3u);  // fully serialized chain
    EXPECT_EQ(engine.last_batch().max_width, 1u);
  }
}

TEST(Engine, ChainingSkipsFailedPredecessorsAndForeignEntries) {
  auto logic = add_contract(ContractId{3});
  std::vector<Task> tasks;
  // Task 0 fails (gas limit 1); task 1 must then run against its own input,
  // not the failed predecessor's bundle.
  tasks.push_back(make_add_task(logic, 5, 50, 0));
  tasks[0].limits.gas_limit = 1;
  tasks.push_back(make_add_task(logic, 5, 50, 1));
  // Predecessor carries a balance the successor never declared: it must NOT
  // leak into the successor's output bundle.
  tasks[0].input.balances[AccountId{99}] = 7;
  tasks[0].access.writes.push_back(account_key(AccountId{99}));
  tasks[0].access.normalize();
  EngineOptions eo;
  eo.chain_conflicts = true;
  Engine engine(eo);
  const auto results = engine.run_batch(std::move(tasks));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].vm.ok());
  ASSERT_TRUE(results[1].vm.ok());
  EXPECT_EQ(results[1].output.contracts.at(ContractId{3}).at(0), 55u);
  EXPECT_FALSE(results[1].output.balances.contains(AccountId{99}));
}

TEST(Engine, TelemetrySnapshotIdenticalAcrossWorkerCounts) {
  auto run_with = [](std::uint32_t workers) {
    telemetry::MetricsRegistry reg;
    auto logic = add_contract(ContractId{5});
    std::vector<Task> tasks;
    for (std::uint64_t i = 0; i < 6; ++i)
      tasks.push_back(make_add_task(logic, i + 1, 0, static_cast<std::uint8_t>(i)));
    EngineOptions eo;
    eo.workers = workers;
    eo.chain_conflicts = true;
    Engine engine(eo);
    engine.set_metrics(&reg);
    (void)engine.run_batch(std::move(tasks));
    return reg.to_json();
  };
  const std::string serial = run_with(1);
  EXPECT_EQ(run_with(2), serial);
  EXPECT_EQ(run_with(8), serial);
  EXPECT_NE(serial.find("exec.batch.levels"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Workload skew knob
// ---------------------------------------------------------------------------

TEST(Workload, ZipfSkewConcentratesContractDraws) {
  auto hot_share = [](double skew) {
    workload::TraceConfig tc;
    tc.num_contracts = 100;
    tc.num_accounts = 1000;
    tc.zipf_skew = skew;
    workload::TraceGenerator gen(tc, Rng(42));
    std::uint64_t hot = 0, total = 0;
    for (int i = 0; i < 1500; ++i) {
      const auto tx = gen.contract_tx(0, 0);
      for (auto c : tx.contracts) {
        total += 1;
        if (c.value < 10) hot += 1;  // the 10 hottest ranks
      }
    }
    return static_cast<double>(hot) / static_cast<double>(total);
  };
  const double uniform = hot_share(0.0);
  const double skewed = hot_share(1.2);
  EXPECT_NEAR(uniform, 0.10, 0.03);  // 10% of contracts, ~10% of draws
  EXPECT_GT(skewed, 0.45);           // hot ranks dominate under Zipf(1.2)
}

TEST(Workload, SkewedTraceIsDeterministicPerSeed) {
  auto trace_sig = [] {
    workload::TraceConfig tc;
    tc.num_contracts = 60;
    tc.zipf_skew = 0.9;
    workload::TraceGenerator gen(tc, Rng(7));
    std::vector<std::uint64_t> sig;
    for (int i = 0; i < 50; ++i)
      for (auto c : gen.contract_tx(0, 0).contracts) sig.push_back(c.value);
    return sig;
  };
  EXPECT_EQ(trace_sig(), trace_sig());
}

// ---------------------------------------------------------------------------
// End-to-end determinism: bit-identical across worker counts
// ---------------------------------------------------------------------------

harness::RunConfig small_run(harness::SystemKind kind, std::uint32_t workers) {
  harness::RunConfig rc;
  rc.kind = kind;
  rc.num_shards = 2;
  rc.nodes_per_shard = 4;
  rc.seed = 11;
  rc.contract_txs = 90;
  rc.transfer_txs = 20;
  rc.closed_loop_window = 24;
  rc.exec_workers = workers;
  rc.trace.num_contracts = 60;
  rc.trace.num_accounts = 400;
  rc.trace.max_contracts_per_tx = 4;
  rc.trace.max_steps = 8;
  rc.trace.zipf_skew = 0.8;  // some hot-key contention so batches really conflict
  return rc;
}

TEST(Determinism, LedgerAndTelemetryBitIdenticalAcrossWorkerCounts) {
  using harness::SystemKind;
  for (const SystemKind kind :
       {SystemKind::kJenga, SystemKind::kJengaNoLattice, SystemKind::kCxFunc,
        SystemKind::kSingleShard, SystemKind::kPyramid}) {
    SCOPED_TRACE(harness::system_name(kind));
    const auto serial = harness::run_experiment(small_run(kind, 1));
    ASSERT_GT(serial.stats.committed, 0u);
    for (const std::uint32_t workers : {2u, 8u}) {
      SCOPED_TRACE(workers);
      const auto parallel = harness::run_experiment(small_run(kind, workers));
      EXPECT_EQ(parallel.ledger_digest, serial.ledger_digest);
      EXPECT_EQ(parallel.stats.committed, serial.stats.committed);
      EXPECT_EQ(parallel.stats.aborted, serial.stats.aborted);
      EXPECT_EQ(parallel.sim_events, serial.sim_events);
      EXPECT_EQ(parallel.telemetry->registry.to_json(), serial.telemetry->registry.to_json());
    }
  }
}

}  // namespace
}  // namespace jenga::exec
