// Telemetry subsystem: registry semantics, histogram accuracy bounds, phase
// tracer completeness on a real workload (the intervals must partition the
// end-to-end latency exactly), same-seed determinism of the snapshots, and
// the JSONL exporter/validator pair.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hpp"
#include "telemetry/telemetry.hpp"

namespace jenga::telemetry {
namespace {

TEST(MetricsRegistry, CreatesOnFirstUseAndFinds) {
  MetricsRegistry reg;
  reg.counter("a").inc(3);
  reg.counter("a").inc(2);  // same metric, not a second one
  reg.gauge("g").set(-7);
  reg.histogram("h").record(10);

  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a")->value(), 5u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("g")->value(), -7);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(MetricsRegistry, JsonIsNameOrderedAndDeterministic) {
  MetricsRegistry a, b;
  a.counter("z").inc(1);
  a.counter("a").inc(2);
  // Opposite creation order, same content.
  b.counter("a").inc(2);
  b.counter("z").inc(1);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(a == b);
  EXPECT_LT(a.to_json().find("\"a\""), a.to_json().find("\"z\""));
}

TEST(Histogram, SmallValuesExactLargeValuesBounded) {
  Histogram h;
  for (int v = 0; v < 16; ++v) h.record(v);
  // Below 2^kSubBucketBits every value has its own bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 15.0);

  Histogram big;
  for (std::int64_t v = 1; v <= 1'000'000; v += 997) big.record(v);
  const double p50 = big.quantile(0.5);
  EXPECT_NEAR(p50, 500'000.0, 500'000.0 * 0.07);  // ~6% bucket error bound
  EXPECT_EQ(big.min(), 1);
  EXPECT_GE(big.max(), 999'000);
}

TEST(Histogram, BucketEdgeQuantileConsistentWithRawMax) {
  // Regression: a rank landing exactly on a log-linear bucket boundary used
  // to interpolate past the bucket's top value (est = lower + 1.0 * width),
  // and when a larger outlier existed elsewhere the global min/max clamp
  // could not catch the overshoot: 100 samples of 16 plus one of 1000
  // reported p99 = 17 even though no sample lies in (16, 1000).
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(16);
  h.record(1000);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 16.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  EXPECT_EQ(h.max(), 1000);

  // Any single-valued distribution must report that value at every quantile,
  // including values sitting exactly on bucket boundaries (powers of two).
  for (const std::int64_t v : {15ll, 16ll, 32ll, 1024ll, 4096ll}) {
    Histogram one;
    for (int i = 0; i < 1000; ++i) one.record(v);
    EXPECT_DOUBLE_EQ(one.quantile(0.5), static_cast<double>(v)) << v;
    EXPECT_DOUBLE_EQ(one.quantile(0.99), static_cast<double>(v)) << v;
    EXPECT_DOUBLE_EQ(one.quantile(1.0), static_cast<double>(v)) << v;
  }

  // Quantiles never exceed the recorded raw max, boundary or not.
  Histogram mix;
  for (int i = 0; i < 90; ++i) mix.record(100);
  for (int i = 0; i < 10; ++i) mix.record(1017);
  EXPECT_LE(mix.quantile(0.99), static_cast<double>(mix.max()));
  EXPECT_DOUBLE_EQ(mix.quantile(1.0), 1017.0);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a, b, both;
  for (int i = 0; i < 100; ++i) {
    a.record(i * 31);
    both.record(i * 31);
  }
  for (int i = 0; i < 50; ++i) {
    b.record(i * 1009);
    both.record(i * 1009);
  }
  a.merge(b);
  EXPECT_TRUE(a == both);
}

TEST(PhaseTracer, IntervalsPartitionLatencyExactly) {
  PhaseTracer t;
  Hash256 h;
  h.bytes[0] = 1;
  t.on_submit(h, 100);
  t.phase_event(h, Phase::kStateLock, 0, 250);
  t.phase_event(h, Phase::kStateLock, 1, 300);  // later shard wins (critical path)
  t.phase_event(h, Phase::kGather, 2, 400);
  t.phase_event(h, Phase::kExecute, 2, 900);
  t.phase_event(h, Phase::kCommitApply, 0, 950);
  t.on_finish(h, true, 1000);

  const TxTrace* tr = t.find(h);
  ASSERT_NE(tr, nullptr);
  EXPECT_TRUE(tr->done);
  EXPECT_TRUE(tr->committed);
  const auto iv = tr->intervals();
  EXPECT_EQ(iv[0], 200);  // state_lock: 100 -> 300
  EXPECT_EQ(iv[1], 100);  // grant_relay: 300 -> 400
  EXPECT_EQ(iv[2], 500);  // execute: 400 -> 900
  EXPECT_EQ(iv[3], 100);  // commit: 900 -> 1000 (finish closes the interval)
  EXPECT_EQ(iv[0] + iv[1] + iv[2] + iv[3], tr->finish - tr->submit);
  EXPECT_EQ(tr->critical_interval(), 2u);

  // Late events after the finish must not smear the settled trace.
  t.phase_event(h, Phase::kExecute, 3, 5000);
  EXPECT_EQ(t.find(h)->checkpoint[static_cast<std::size_t>(Phase::kExecute)], 900);
}

TEST(PhaseTracer, SkippedPhasesContributeZeroLengthIntervals) {
  PhaseTracer t;
  Hash256 h;
  h.bytes[0] = 2;
  t.on_submit(h, 0);
  t.phase_event(h, Phase::kExecute, 0, 70);
  t.on_finish(h, false, 100);  // aborted, never locked or gathered
  const auto iv = t.find(h)->intervals();
  EXPECT_EQ(iv[0] + iv[1] + iv[2] + iv[3], 100);
  EXPECT_EQ(iv[2], 70);

  const PhaseBreakdown b = t.breakdown();
  EXPECT_EQ(b.aborted, 1u);
  EXPECT_EQ(b.committed, 0u);
}

TEST(PhaseTracer, SpanCapacityDropsBeyondLimit) {
  PhaseTracer t;
  t.set_span_capacity(2);
  t.span("bft.round", 1, 1, 0, 10);
  t.span("bft.round", 1, 2, 10, 20);
  t.span("bft.round", 1, 3, 20, 30);
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans_dropped(), 1u);
}

harness::RunConfig small_run(harness::SystemKind kind) {
  harness::RunConfig cfg;
  cfg.kind = kind;
  cfg.num_shards = 4;
  cfg.nodes_per_shard = 8;
  cfg.contract_txs = 120;
  cfg.inject_window = 30 * kSecond;
  cfg.max_sim_time = 900 * kSecond;
  cfg.trace.num_contracts = 1000;
  cfg.trace.num_accounts = 2000;
  cfg.trace.max_steps = 12;
  cfg.trace.max_contracts_per_tx = 6;
  return cfg;
}

class TracedRunTest : public ::testing::TestWithParam<harness::SystemKind> {};

TEST_P(TracedRunTest, EveryTransactionLeavesACompleteTrace) {
  const auto r = run_experiment(small_run(GetParam()));
  ASSERT_NE(r.telemetry, nullptr);
  const PhaseTracer& tracer = r.telemetry->tracer;
  EXPECT_EQ(tracer.traced(), r.stats.submitted);

  std::uint64_t done = 0;
  for (const auto& [hash, tr] : tracer.traces()) {
    if (!tr.done) continue;
    ++done;
    ASSERT_GE(tr.submit, 0);
    ASSERT_GE(tr.finish, tr.submit);
    const auto iv = tr.intervals();
    // The partition is exact by construction — not within 1%, equal.
    EXPECT_EQ(iv[0] + iv[1] + iv[2] + iv[3], tr.finish - tr.submit);
  }
  EXPECT_EQ(done, r.stats.committed + r.stats.aborted);

  const PhaseBreakdown& b = r.breakdown;
  EXPECT_EQ(b.committed, r.stats.committed);
  EXPECT_EQ(b.aborted, r.stats.aborted);
  EXPECT_EQ(b.incomplete, 0u);
  std::int64_t phase_sum = 0;
  for (std::size_t p = 0; p < kIntervalCount; ++p) phase_sum += b.interval_sum[p];
  EXPECT_EQ(phase_sum, b.total_sum);
  // And the tracer's total agrees with the system's own latency accounting.
  EXPECT_EQ(b.total_sum, static_cast<std::int64_t>(r.stats.total_commit_latency));
}

INSTANTIATE_TEST_SUITE_P(Systems, TracedRunTest,
                         ::testing::Values(harness::SystemKind::kJenga,
                                           harness::SystemKind::kJengaNoLattice,
                                           harness::SystemKind::kJengaNoGlobalLogic,
                                           harness::SystemKind::kCxFunc,
                                           harness::SystemKind::kPyramid),
                         [](const auto& info) {
                           switch (info.param) {
                             case harness::SystemKind::kJenga: return "Jenga";
                             case harness::SystemKind::kJengaNoLattice: return "JengaNoOLS";
                             case harness::SystemKind::kJengaNoGlobalLogic: return "JengaNoNWLS";
                             case harness::SystemKind::kCxFunc: return "CxFunc";
                             case harness::SystemKind::kPyramid: return "Pyramid";
                             default: return "?";
                           }
                         });

TEST(TelemetryDeterminism, SameSeedSameSnapshot) {
  const auto a = run_experiment(small_run(harness::SystemKind::kJenga));
  const auto b = run_experiment(small_run(harness::SystemKind::kJenga));
  ASSERT_NE(a.telemetry, nullptr);
  ASSERT_NE(b.telemetry, nullptr);
  EXPECT_EQ(a.telemetry->registry.to_json(), b.telemetry->registry.to_json());

  std::ostringstream ja, jb;
  a.telemetry->export_jsonl(ja);
  b.telemetry->export_jsonl(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(TelemetryExport, JsonlValidatesAndCountsLines) {
  const auto r = run_experiment(small_run(harness::SystemKind::kJenga));
  std::ostringstream out;
  r.telemetry->export_jsonl(out);

  std::istringstream in(out.str());
  std::string error;
  TraceLintSummary summary;
  EXPECT_TRUE(validate_trace_stream(in, &error, &summary)) << error;
  EXPECT_EQ(summary.tx_lines, r.stats.submitted);
  EXPECT_GT(summary.metric_lines, 0u);
  EXPECT_EQ(summary.phase_hist_lines, kIntervalCount);
  EXPECT_GT(summary.span_lines, 0u);  // BFT rounds happened
}

TEST(TraceValidator, RejectsMalformedLines) {
  std::string err;
  EXPECT_FALSE(validate_trace_line("not json", &err));
  EXPECT_FALSE(validate_trace_line("{\"no_kind\":1}", &err));
  EXPECT_FALSE(validate_trace_line("{\"kind\":\"mystery\"}", &err));
  // tx line whose phases do not sum to finish - submit.
  const std::string bad_tx =
      "{\"kind\":\"tx\",\"hash\":\"" + std::string(64, 'a') +
      "\",\"outcome\":\"commit\",\"submit_us\":0,\"finish_us\":1000,"
      "\"state_lock_us\":1,\"grant_relay_us\":1,\"execute_us\":1,\"commit_us\":1,"
      "\"critical\":\"state_lock\"}";
  EXPECT_FALSE(validate_trace_line(bad_tx, &err));
  EXPECT_NE(err.find("do not sum"), std::string::npos) << err;
  // Same line with a consistent partition passes.
  const std::string good_tx =
      "{\"kind\":\"tx\",\"hash\":\"" + std::string(64, 'a') +
      "\",\"outcome\":\"commit\",\"submit_us\":0,\"finish_us\":1000,"
      "\"state_lock_us\":400,\"grant_relay_us\":100,\"execute_us\":300,"
      "\"commit_us\":200,\"critical\":\"state_lock\"}";
  EXPECT_TRUE(validate_trace_line(good_tx, &err)) << err;

  // A stream without a meta line is invalid even if every line passes.
  std::istringstream in(good_tx + "\n");
  EXPECT_FALSE(validate_trace_stream(in, &err));
}

}  // namespace
}  // namespace jenga::telemetry
