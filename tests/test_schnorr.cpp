// Schnorr single signatures and MuSig-style aggregation sessions.
#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

std::vector<std::uint8_t> msg_bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Schnorr, SignVerifyRoundTrip) {
  const KeyPair kp = keypair_from_seed(1);
  const auto msg = msg_bytes("hello jenga");
  const Signature sig = sign(kp, msg);
  EXPECT_TRUE(verify(kp.public_key, msg, sig));
}

TEST(Schnorr, WrongMessageRejected) {
  const KeyPair kp = keypair_from_seed(2);
  const Signature sig = sign(kp, msg_bytes("msg-a"));
  EXPECT_FALSE(verify(kp.public_key, msg_bytes("msg-b"), sig));
}

TEST(Schnorr, WrongKeyRejected) {
  const KeyPair kp1 = keypair_from_seed(3);
  const KeyPair kp2 = keypair_from_seed(4);
  const auto msg = msg_bytes("msg");
  const Signature sig = sign(kp1, msg);
  EXPECT_FALSE(verify(kp2.public_key, msg, sig));
}

TEST(Schnorr, TamperedSignatureRejected) {
  const KeyPair kp = keypair_from_seed(5);
  const auto msg = msg_bytes("msg");
  Signature sig = sign(kp, msg);
  sig.s = addmod(sig.s, U256(1), kOrderN);
  EXPECT_FALSE(verify(kp.public_key, msg, sig));
}

TEST(Schnorr, DeterministicSignature) {
  const KeyPair kp = keypair_from_seed(6);
  const auto msg = msg_bytes("msg");
  const Signature a = sign(kp, msg);
  const Signature b = sign(kp, msg);
  EXPECT_EQ(a.r, b.r);
  EXPECT_EQ(a.s, b.s);
}

TEST(Schnorr, KeypairDeterministicFromSeed) {
  EXPECT_EQ(keypair_from_seed(7).public_key, keypair_from_seed(7).public_key);
  EXPECT_NE(keypair_from_seed(7).public_key, keypair_from_seed(8).public_key);
}

class MultisigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (std::uint64_t i = 0; i < 5; ++i) keys_.push_back(keypair_from_seed(100 + i));
    for (const auto& k : keys_) group_.push_back(k.public_key);
    msg_ = msg_bytes("quorum certificate payload");
  }

  std::vector<KeyPair> keys_;
  std::vector<Point> group_;
  std::vector<std::uint8_t> msg_;
};

TEST_F(MultisigTest, FullGroupAggregates) {
  MultisigSession session(group_, msg_);
  std::vector<MultisigSession::Commitment> commits;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    commits.push_back(session.make_commitment(i, keys_[i], /*nonce_seed=*/i));
    ASSERT_TRUE(session.add_commitment(commits.back()));
  }
  for (std::size_t i = 0; i < keys_.size(); ++i)
    ASSERT_TRUE(session.add_response(i, session.make_response(commits[i], keys_[i])));
  auto agg = session.aggregate();
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->signer_count(), 5u);
  EXPECT_TRUE(verify_multisig(group_, msg_, *agg));
}

TEST_F(MultisigTest, SubsetAggregates) {
  MultisigSession session(group_, msg_);
  // Only signers 0, 2, 4 participate (a 3-of-5 quorum).  All commitments
  // must be collected before any response: the challenge binds R_agg.
  std::vector<MultisigSession::Commitment> commits;
  for (std::size_t i : {0u, 2u, 4u}) {
    commits.push_back(session.make_commitment(i, keys_[i], i));
    ASSERT_TRUE(session.add_commitment(commits.back()));
  }
  for (const auto& c : commits)
    ASSERT_TRUE(session.add_response(c.index, session.make_response(c, keys_[c.index])));
  auto agg = session.aggregate();
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->signer_count(), 3u);
  EXPECT_TRUE(verify_multisig(group_, msg_, *agg));
}

TEST_F(MultisigTest, BitmapTamperRejected) {
  MultisigSession session(group_, msg_);
  std::vector<MultisigSession::Commitment> commits;
  for (std::size_t i : {0u, 1u, 2u}) {
    commits.push_back(session.make_commitment(i, keys_[i], i));
    ASSERT_TRUE(session.add_commitment(commits.back()));
  }
  for (const auto& c : commits)
    ASSERT_TRUE(session.add_response(c.index, session.make_response(c, keys_[c.index])));
  auto agg = session.aggregate();
  ASSERT_TRUE(agg.has_value());
  // Claiming an extra signer participated must fail verification.
  agg->signers[3] = true;
  EXPECT_FALSE(verify_multisig(group_, msg_, *agg));
}

TEST_F(MultisigTest, WrongMessageRejected) {
  MultisigSession session(group_, msg_);
  std::vector<MultisigSession::Commitment> commits;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    commits.push_back(session.make_commitment(i, keys_[i], i));
    ASSERT_TRUE(session.add_commitment(commits.back()));
  }
  for (const auto& c : commits)
    ASSERT_TRUE(session.add_response(c.index, session.make_response(c, keys_[c.index])));
  auto agg = session.aggregate();
  ASSERT_TRUE(agg.has_value());
  const auto other = msg_bytes("different payload");
  EXPECT_FALSE(verify_multisig(group_, other, *agg));
}

TEST_F(MultisigTest, BadResponseRejectedAtCollection) {
  MultisigSession session(group_, msg_);
  auto c = session.make_commitment(0, keys_[0], 0);
  ASSERT_TRUE(session.add_commitment(c));
  // A Byzantine replica submits garbage: per-signer verification catches it.
  EXPECT_FALSE(session.add_response(0, U256(12345)));
  // The honest response still goes through afterwards.
  EXPECT_TRUE(session.add_response(0, session.make_response(c, keys_[0])));
}

TEST_F(MultisigTest, DuplicateCommitmentRejected) {
  MultisigSession session(group_, msg_);
  auto c = session.make_commitment(1, keys_[1], 1);
  EXPECT_TRUE(session.add_commitment(c));
  EXPECT_FALSE(session.add_commitment(c));
}

TEST_F(MultisigTest, MissingResponseBlocksAggregate) {
  MultisigSession session(group_, msg_);
  auto c0 = session.make_commitment(0, keys_[0], 0);
  auto c1 = session.make_commitment(1, keys_[1], 1);
  session.add_commitment(c0);
  session.add_commitment(c1);
  session.add_response(0, session.make_response(c0, keys_[0]));
  // Signer 1 committed but never responded: aggregate unavailable.
  EXPECT_FALSE(session.aggregate().has_value());
}

TEST_F(MultisigTest, EmptyAggregateUnavailable) {
  MultisigSession session(group_, msg_);
  EXPECT_FALSE(session.aggregate().has_value());
}

// ---------------------------------------------------------------------------
// Random-linear-combination batch verification over several certificates.

class SchnorrBatchTest : public MultisigTest {
 protected:
  // Runs a full commit/response session over `signers` and returns the
  // aggregate (the fixture group signs `m`).
  MultiSignature make_cert(std::initializer_list<std::size_t> signers,
                           const std::vector<std::uint8_t>& m) {
    MultisigSession session(group_, m);
    std::vector<MultisigSession::Commitment> commits;
    for (const std::size_t i : signers) {
      commits.push_back(session.make_commitment(i, keys_[i], i));
      EXPECT_TRUE(session.add_commitment(commits.back()));
    }
    for (const auto& c : commits)
      EXPECT_TRUE(session.add_response(c.index, session.make_response(c, keys_[c.index])));
    auto agg = session.aggregate();
    EXPECT_TRUE(agg.has_value());
    return *agg;
  }
};

TEST_F(SchnorrBatchTest, ManyCertsOnePass) {
  const auto m1 = msg_bytes("cert for height 1");
  const auto m2 = msg_bytes("cert for height 2");
  const auto m3 = msg_bytes("cert for height 3");
  const MultiSignature s1 = make_cert({0, 1, 2, 3, 4}, m1);
  const MultiSignature s2 = make_cert({0, 2, 4}, m2);  // 3-of-5 quorum
  const MultiSignature s3 = make_cert({1, 2, 3}, m3);
  const std::vector<MultisigBatchEntry> entries{
      {group_, m1, &s1}, {group_, m2, &s2}, {group_, m3, &s3}};
  EXPECT_TRUE(verify_multisig_batch(entries, /*seed=*/7));
  EXPECT_TRUE(verify_multisig_batch(entries, /*seed=*/99));
  EXPECT_TRUE(verify_multisig_batch({}, 7));  // empty batch is vacuous
}

TEST_F(SchnorrBatchTest, ForgedEntryPoisonsBatchAndFallbackIsolates) {
  const auto m1 = msg_bytes("honest");
  const auto m2 = msg_bytes("forged");
  const MultiSignature s1 = make_cert({0, 1, 2}, m1);
  MultiSignature s2 = make_cert({0, 1, 2}, m2);
  s2.s = addmod(s2.s, U256(1), kOrderN);
  const std::vector<MultisigBatchEntry> entries{{group_, m1, &s1}, {group_, m2, &s2}};
  EXPECT_FALSE(verify_multisig_batch(entries, 7));
  EXPECT_TRUE(verify_multisig(group_, m1, s1));
  EXPECT_FALSE(verify_multisig(group_, m2, s2));
}

TEST_F(SchnorrBatchTest, BitmapTamperRejected) {
  const auto m = msg_bytes("payload");
  MultiSignature s = make_cert({0, 1, 2}, m);
  s.signers[4] = true;
  const std::vector<MultisigBatchEntry> entries{{group_, m, &s}};
  EXPECT_FALSE(verify_multisig_batch(entries, 7));
}

TEST_F(SchnorrBatchTest, CrossMessageSwapRejected) {
  const auto m1 = msg_bytes("for shard 0");
  const auto m2 = msg_bytes("for shard 1");
  const MultiSignature s1 = make_cert({0, 1, 2}, m1);
  const MultiSignature s2 = make_cert({0, 1, 2}, m2);
  // Present each cert against the other's message.
  const std::vector<MultisigBatchEntry> entries{{group_, m2, &s1}, {group_, m1, &s2}};
  EXPECT_FALSE(verify_multisig_batch(entries, 7));
}

TEST_F(MultisigTest, RogueKeyBitmapSizeMismatchRejected) {
  MultisigSession session(group_, msg_);
  auto c = session.make_commitment(0, keys_[0], 0);
  session.add_commitment(c);
  session.add_response(0, session.make_response(c, keys_[0]));
  auto agg = session.aggregate();
  ASSERT_TRUE(agg.has_value());
  std::vector<Point> smaller(group_.begin(), group_.end() - 1);
  EXPECT_FALSE(verify_multisig(smaller, msg_, *agg));
}

}  // namespace
}  // namespace jenga::crypto
