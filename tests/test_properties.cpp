// Property-based sweeps across systems and seeds: the invariants that must
// hold for ANY random workload on ANY of the four systems —
//   * completion: every submitted tx eventually commits or aborts,
//   * conservation: Σ balances == initial − fees charged,
//   * no dangling locks after quiescence,
//   * chains verify end-to-end,
//   * determinism: identical seeds give identical outcomes.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "baselines/cxfunc.hpp"
#include "baselines/pyramid.hpp"
#include "baselines/single_shard.hpp"
#include "core/jenga_system.hpp"
#include "harness/genesis.hpp"
#include "workload/trace.hpp"

namespace jenga {
namespace {

enum class Sys { kJenga, kJengaNoLattice, kJengaNoGlobalLogic, kCxFunc, kSingleShard, kPyramid };

struct Outcome {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t fees = 0;
  std::uint64_t final_balance = 0;
  std::uint64_t initial_balance = 0;
  std::size_t locks = 0;
  bool chains_ok = true;
};

Outcome run_system(Sys sys, std::uint64_t seed, int num_txs) {
  workload::TraceConfig tc;
  tc.num_contracts = 1200;
  tc.num_accounts = 500;
  tc.max_contracts_per_tx = 5;
  tc.max_steps = 10;
  workload::TraceGenerator gen(tc, Rng(seed));

  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(seed ^ 0xF00));
  const auto genesis = harness::make_genesis(gen);

  std::unique_ptr<core::JengaSystem> jenga;
  std::unique_ptr<baselines::BaselineSystem> baseline;
  const std::uint32_t num_shards = 3;
  if (sys == Sys::kJenga || sys == Sys::kJengaNoLattice || sys == Sys::kJengaNoGlobalLogic) {
    core::JengaConfig cfg;
    cfg.num_shards = num_shards;
    cfg.nodes_per_shard = 6;
    cfg.seed = seed;
    cfg.pipeline = sys == Sys::kJenga ? core::Pipeline::kFull
                   : sys == Sys::kJengaNoLattice ? core::Pipeline::kNoLattice
                                                 : core::Pipeline::kNoGlobalLogic;
    jenga = std::make_unique<core::JengaSystem>(sim, net, cfg, genesis);
    jenga->start();
  } else {
    baselines::BaselineConfig cfg;
    cfg.num_shards = num_shards;
    cfg.nodes_per_shard = 6;
    cfg.seed = seed;
    cfg.merge_span = 2;
    if (sys == Sys::kCxFunc) {
      baseline = std::make_unique<baselines::CxFuncSystem>(sim, net, cfg, genesis);
    } else if (sys == Sys::kSingleShard) {
      baseline = std::make_unique<baselines::SingleShardSystem>(sim, net, cfg, genesis);
    } else {
      baseline = std::make_unique<baselines::PyramidSystem>(sim, net, cfg, genesis);
    }
    baseline->start();
  }

  Outcome out;
  out.initial_balance = tc.num_accounts * tc.account_initial_balance;

  Rng pick(seed ^ 0xAB);
  for (int i = 0; i < num_txs; ++i) {
    sim.run_until(sim.now() + static_cast<SimTime>(pick.uniform(2000) + 200) * kMillisecond);
    auto tx = std::make_shared<ledger::Transaction>(
        pick.chance(0.25) ? gen.transfer_tx(sim.now())
                          : gen.contract_tx(pick.uniform(1'000'000), sim.now()));
    if (jenga) {
      jenga->submit(tx);
    } else {
      baseline->submit(tx);
    }
  }
  sim.run_until(sim.now() + 900 * kSecond);

  const TxStats& st = jenga ? jenga->stats() : baseline->stats();
  out.committed = st.committed;
  out.aborted = st.aborted;
  out.fees = st.fees_charged;
  out.final_balance = jenga ? jenga->total_account_balance() : baseline->total_account_balance();
  out.locks = jenga ? jenga->held_locks() : baseline->held_locks();
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const auto& chain = jenga ? jenga->shard_chain(ShardId{s}) : baseline->shard_chain(ShardId{s});
    out.chains_ok = out.chains_ok && chain.verify();
  }
  return out;
}

class PropertyTest : public ::testing::TestWithParam<std::tuple<Sys, std::uint64_t>> {};

TEST_P(PropertyTest, InvariantsHold) {
  const auto [sys, seed] = GetParam();
  const int n = 25;
  const Outcome out = run_system(sys, seed, n);
  EXPECT_EQ(out.committed + out.aborted, static_cast<std::uint64_t>(n))
      << "committed=" << out.committed << " aborted=" << out.aborted;
  EXPECT_EQ(out.final_balance, out.initial_balance - out.fees);
  EXPECT_EQ(out.locks, 0u);
  EXPECT_TRUE(out.chains_ok);
  EXPECT_GT(out.committed, static_cast<std::uint64_t>(n) / 2);
}

std::string sweep_name(const ::testing::TestParamInfo<std::tuple<Sys, std::uint64_t>>& info) {
  static const char* const kNames[] = {"Jenga",  "JengaNoOLS",  "JengaNoNWLS",
                                       "CxFunc", "SingleShard", "Pyramid"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertyTest,
    ::testing::Combine(::testing::Values(Sys::kJenga, Sys::kJengaNoLattice,
                                         Sys::kJengaNoGlobalLogic, Sys::kCxFunc,
                                         Sys::kSingleShard, Sys::kPyramid),
                       ::testing::Values(11u, 42u, 1234u)),
    sweep_name);

TEST(PropertyDeterminism, IdenticalSeedsIdenticalOutcomes) {
  for (Sys sys : {Sys::kJenga, Sys::kCxFunc, Sys::kPyramid}) {
    const Outcome a = run_system(sys, 77, 15);
    const Outcome b = run_system(sys, 77, 15);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.fees, b.fees);
    EXPECT_EQ(a.final_balance, b.final_balance);
  }
}

TEST(PropertyDeterminism, DifferentSeedsUsuallyDiffer) {
  const Outcome a = run_system(Sys::kJenga, 1, 15);
  const Outcome b = run_system(Sys::kJenga, 2, 15);
  // Different workloads: fee totals almost surely differ.
  EXPECT_NE(a.fees + a.final_balance == b.fees + b.final_balance &&
                a.committed == b.committed && a.fees == b.fees,
            true)
      << "two different seeds produced identical runs (suspicious)";
}

}  // namespace
}  // namespace jenga
