// Experiment runner: every system completes a small trace replay, metrics
// are sane, and the headline comparative shapes already show at small scale.
#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace jenga::harness {
namespace {

RunConfig small_run(SystemKind kind) {
  RunConfig cfg;
  cfg.kind = kind;
  cfg.num_shards = 4;
  cfg.nodes_per_shard = 8;
  cfg.contract_txs = 120;
  cfg.inject_window = 30 * kSecond;
  cfg.max_sim_time = 900 * kSecond;
  cfg.trace.num_contracts = 1000;
  cfg.trace.num_accounts = 2000;
  cfg.trace.max_steps = 12;
  cfg.trace.max_contracts_per_tx = 6;
  return cfg;
}

class RunnerTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(RunnerTest, CompletesWorkload) {
  const RunResult r = run_experiment(small_run(GetParam()));
  EXPECT_EQ(r.stats.submitted, 120u);
  EXPECT_EQ(r.stats.committed + r.stats.aborted, 120u)
      << "committed=" << r.stats.committed << " aborted=" << r.stats.aborted;
  EXPECT_GT(r.stats.committed, 90u);
  EXPECT_GT(r.tps, 0.0);
  EXPECT_GT(r.latency_s, 0.0);
  EXPECT_GT(r.storage.total(), 0u);
  EXPECT_GT(r.sim_events, 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Systems, RunnerTest,
    ::testing::Values(SystemKind::kJenga, SystemKind::kJengaNoLattice,
                      SystemKind::kJengaNoGlobalLogic, SystemKind::kCxFunc,
                      SystemKind::kSingleShard, SystemKind::kPyramid),
    [](const auto& info) {
      switch (info.param) {
        case SystemKind::kJenga: return "Jenga";
        case SystemKind::kJengaNoLattice: return "JengaNoOLS";
        case SystemKind::kJengaNoGlobalLogic: return "JengaNoNWLS";
        case SystemKind::kCxFunc: return "CxFunc";
        case SystemKind::kSingleShard: return "SingleShard";
        case SystemKind::kPyramid: return "Pyramid";
      }
      return "?";
    });

TEST(RunnerShapes, JengaBeatsCxFuncOnLatency) {
  auto jenga = run_experiment(small_run(SystemKind::kJenga));
  auto cxf = run_experiment(small_run(SystemKind::kCxFunc));
  EXPECT_LT(jenga.latency_s, cxf.latency_s);
}

TEST(RunnerShapes, JengaHasNoCrossShardContractTraffic) {
  auto jenga = run_experiment(small_run(SystemKind::kJenga));
  EXPECT_EQ(jenga.traffic.messages[1], 0u);
  auto cxf = run_experiment(small_run(SystemKind::kCxFunc));
  EXPECT_GT(cxf.traffic.messages[1], 0u);
}

TEST(RunnerShapes, PaperNodesPerShardTable) {
  EXPECT_EQ(paper_nodes_per_shard(4), 180u);
  EXPECT_EQ(paper_nodes_per_shard(6), 200u);
  EXPECT_EQ(paper_nodes_per_shard(8), 210u);
  EXPECT_EQ(paper_nodes_per_shard(10), 230u);
  EXPECT_EQ(paper_nodes_per_shard(12), 240u);
}

TEST(RunnerShapes, DeterministicResults) {
  auto a = run_experiment(small_run(SystemKind::kJenga));
  auto b = run_experiment(small_run(SystemKind::kJenga));
  EXPECT_EQ(a.stats.committed, b.stats.committed);
  EXPECT_EQ(a.stats.total_commit_latency, b.stats.total_commit_latency);
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(RunnerShapes, TransfersFasterThanContracts) {
  RunConfig transfers = small_run(SystemKind::kCxFunc);
  transfers.contract_txs = 0;
  transfers.transfer_txs = 120;
  RunConfig contracts = small_run(SystemKind::kCxFunc);
  const auto rt = run_experiment(transfers);
  const auto rc = run_experiment(contracts);
  EXPECT_EQ(rt.stats.committed + rt.stats.aborted, 120u);
  EXPECT_LT(rt.latency_s, rc.latency_s);  // Fig. 3b's gap, latency view
}

}  // namespace
}  // namespace jenga::harness
