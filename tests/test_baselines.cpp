// Baseline systems (Single Shard, CX Func, Pyramid): end-to-end commits,
// abort paths, conservation, storage shapes, and cross-shard transport modes.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "baselines/cxfunc.hpp"
#include "baselines/pyramid.hpp"
#include "baselines/single_shard.hpp"
#include "harness/genesis.hpp"
#include "ledger/placement.hpp"
#include "workload/trace.hpp"

namespace jenga::baselines {
namespace {

using ledger::Transaction;

enum class Kind { kSingleShard, kCxFunc, kPyramid };

struct Fixture {
  explicit Fixture(Kind kind, BaselineConfig cfg, std::uint64_t workload_seed = 7) {
    workload::TraceConfig tc;
    tc.num_contracts = 150;
    tc.num_accounts = 200;
    tc.max_contracts_per_tx = 4;
    tc.max_steps = 8;
    gen = std::make_unique<workload::TraceGenerator>(tc, Rng(workload_seed));
    net = std::make_unique<sim::Network>(sim, sim::NetConfig{}, Rng(cfg.seed));
    const auto genesis = harness::make_genesis(*gen);
    switch (kind) {
      case Kind::kSingleShard:
        system = std::make_unique<SingleShardSystem>(sim, *net, cfg, genesis);
        break;
      case Kind::kCxFunc:
        system = std::make_unique<CxFuncSystem>(sim, *net, cfg, genesis);
        break;
      case Kind::kPyramid:
        system = std::make_unique<PyramidSystem>(sim, *net, cfg, genesis);
        break;
    }
    initial_balance = system->total_account_balance();
    system->start();
  }

  TxPtr submit_contract_tx(std::uint64_t height = 1'000'000) {
    auto tx = std::make_shared<Transaction>(gen->contract_tx(height, sim.now()));
    system->submit(tx);
    return tx;
  }

  sim::Simulator sim;
  std::unique_ptr<workload::TraceGenerator> gen;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<BaselineSystem> system;
  std::uint64_t initial_balance = 0;
};

BaselineConfig small_config() {
  BaselineConfig cfg;
  cfg.num_shards = 3;
  cfg.nodes_per_shard = 4;
  cfg.merge_span = 2;
  return cfg;
}

class BaselineKindTest : public ::testing::TestWithParam<Kind> {};

TEST_P(BaselineKindTest, SingleTransactionCommits) {
  Fixture f(GetParam(), small_config());
  auto tx = f.submit_contract_tx();
  f.sim.run_until(300 * kSecond);
  EXPECT_EQ(f.system->stats().committed, 1u);
  EXPECT_EQ(f.system->stats().aborted, 0u);
  EXPECT_EQ(f.system->held_locks(), 0u);
  EXPECT_EQ(f.system->stats().fees_charged, tx->fee);
  EXPECT_EQ(f.system->total_account_balance(), f.initial_balance - tx->fee);
}

TEST_P(BaselineKindTest, WorkloadCompletesAndConserves) {
  Fixture f(GetParam(), small_config());
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    f.sim.run_until(f.sim.now() + 2 * kSecond);
    f.submit_contract_tx();
  }
  f.sim.run_until(1200 * kSecond);
  const auto& st = f.system->stats();
  EXPECT_EQ(st.committed + st.aborted, static_cast<std::uint64_t>(n))
      << "committed=" << st.committed << " aborted=" << st.aborted;
  EXPECT_GT(st.committed, static_cast<std::uint64_t>(n) / 2);
  EXPECT_EQ(f.system->held_locks(), 0u);
  EXPECT_EQ(f.system->total_account_balance(), f.initial_balance - st.fees_charged);
}

TEST_P(BaselineKindTest, ContractStateUpdated) {
  Fixture f(GetParam(), small_config());
  auto tx = f.submit_contract_tx();
  f.sim.run_until(300 * kSecond);
  ASSERT_EQ(f.system->stats().committed, 1u);
  // Locate the contract's store (shard 0 in SingleShard, home shard else).
  const ContractId c = tx->contracts[0];
  const ShardId home = GetParam() == Kind::kSingleShard
                           ? ShardId{0}
                           : ledger::shard_of_contract(c, 3);
  const auto* after = f.system->shard_store(home).contract_state(c);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(*after, f.gen->initial_state(c.value));
}

TEST_P(BaselineKindTest, LockContentionAborts) {
  Fixture f(GetParam(), small_config());
  auto tx1 = std::make_shared<Transaction>(f.gen->contract_tx(0, 0));
  auto tx2 = std::make_shared<Transaction>(*tx1);
  tx2->fee += 1;
  tx2->finalize();
  f.system->submit(tx1);
  f.system->submit(tx2);
  f.sim.run_until(600 * kSecond);
  const auto& st = f.system->stats();
  EXPECT_EQ(st.committed + st.aborted, 2u);
  EXPECT_GE(st.committed, 1u);
  EXPECT_EQ(f.system->held_locks(), 0u);
}

TEST_P(BaselineKindTest, TransfersWork) {
  Fixture f(GetParam(), small_config());
  auto t = std::make_shared<Transaction>(
      ledger::make_transfer(AccountId{0}, AccountId{1}, 50, 1, 0));
  f.system->submit(t);
  f.sim.run_until(120 * kSecond);
  EXPECT_EQ(f.system->stats().committed, 1u);
  EXPECT_EQ(f.system->total_account_balance(), f.initial_balance);
}

TEST_P(BaselineKindTest, DeterministicAcrossRuns) {
  std::uint64_t committed[2];
  for (int round = 0; round < 2; ++round) {
    Fixture f(GetParam(), small_config());
    for (int i = 0; i < 8; ++i) {
      f.sim.run_until(f.sim.now() + 2 * kSecond);
      f.submit_contract_tx();
    }
    f.sim.run_until(900 * kSecond);
    committed[round] = f.system->stats().committed;
  }
  EXPECT_EQ(committed[0], committed[1]);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BaselineKindTest,
                         ::testing::Values(Kind::kSingleShard, Kind::kCxFunc, Kind::kPyramid),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kSingleShard: return "SingleShard";
                             case Kind::kCxFunc: return "CxFunc";
                             case Kind::kPyramid: return "Pyramid";
                           }
                           return "?";
                         });

TEST(CxFunc, MultiStepTxTouchesMultipleShards) {
  Fixture f(Kind::kCxFunc, small_config());
  // Find a generated tx spanning at least 2 home shards.
  TxPtr tx;
  for (int i = 0; i < 50; ++i) {
    auto candidate = std::make_shared<Transaction>(f.gen->contract_tx(1'000'000, 0));
    std::set<std::uint32_t> homes;
    for (auto c : candidate->contracts)
      homes.insert(ledger::shard_of_contract(c, 3).value);
    if (homes.size() >= 2) {
      tx = candidate;
      break;
    }
  }
  ASSERT_NE(tx, nullptr);
  f.system->submit(tx);
  f.sim.run_until(600 * kSecond);
  EXPECT_EQ(f.system->stats().committed, 1u);
  // Cross-shard traffic must exist (hand-offs + commit fan-out).
  EXPECT_GT(f.net->stats().messages[static_cast<int>(sim::TrafficClass::kCrossShard)], 0u);
}

TEST(CxFunc, QuorumBroadcastCostsMoreCrossTraffic) {
  std::uint64_t cross[2];
  for (int mode = 0; mode < 2; ++mode) {
    BaselineConfig cfg = small_config();
    cfg.cross_mode = mode == 0 ? CrossShardMode::kClientRelay : CrossShardMode::kQuorumBroadcast;
    Fixture f(Kind::kCxFunc, cfg);
    for (int i = 0; i < 5; ++i) {
      f.sim.run_until(f.sim.now() + 2 * kSecond);
      f.submit_contract_tx();
    }
    f.sim.run_until(600 * kSecond);
    EXPECT_GT(f.system->stats().committed, 0u);
    cross[mode] = f.net->stats().messages[static_cast<int>(sim::TrafficClass::kCrossShard)];
  }
  EXPECT_GT(cross[1], cross[0] * 3);
}

TEST(SingleShard, ContractShardHoldsAllState) {
  Fixture f(Kind::kSingleShard, small_config());
  EXPECT_EQ(f.system->shard_store(ShardId{0}).contract_count(), 150u);
  EXPECT_EQ(f.system->shard_store(ShardId{1}).contract_count(), 0u);
  const auto r = f.system->storage_report();
  EXPECT_GT(r.state_bytes_per_node, 0u);
}

TEST(Pyramid, StorageIncludesMergeOverhead) {
  Fixture fp(Kind::kPyramid, small_config());
  Fixture fc(Kind::kCxFunc, small_config());
  EXPECT_GT(fp.system->storage_report().extra_bytes_per_node, 0u);
  EXPECT_GT(fp.system->storage_report().total(), fc.system->storage_report().total());
}

TEST(Pyramid, InSpanTxSkipsStepChain) {
  // A tx whose contracts all live inside one merge span commits with less
  // cross-shard traffic than the same tx on CX Func.
  BaselineConfig cfg = small_config();
  cfg.num_shards = 4;
  cfg.merge_span = 2;

  // Build a tx over two contracts homed on shards 0 and 1 (same span).
  auto find_contract_on = [&](std::uint32_t shard, std::uint64_t start) {
    for (std::uint64_t c = start; c < 150; ++c)
      if (ledger::shard_of_contract(ContractId{c}, 4).value == shard) return c;
    return std::uint64_t{0};
  };
  const std::uint64_t c0 = find_contract_on(0, 0);
  const std::uint64_t c1 = find_contract_on(1, 0);

  auto make_tx = [&] {
    auto tx = std::make_shared<Transaction>();
    tx->kind = ledger::TxKind::kContractCall;
    tx->sender = AccountId{1};
    tx->fee = 5;
    tx->contracts = {ContractId{c0}, ContractId{c1}};
    tx->accounts = {AccountId{1}};
    tx->steps = {{0, 0, {1}}, {1, 0, {2}}, {0, 0, {3}}};
    tx->finalize();
    return tx;
  };

  std::uint64_t cross[2];
  for (int which = 0; which < 2; ++which) {
    Fixture f(which == 0 ? Kind::kPyramid : Kind::kCxFunc, cfg);
    f.system->submit(make_tx());
    f.sim.run_until(600 * kSecond);
    EXPECT_EQ(f.system->stats().committed, 1u) << "which=" << which;
    cross[which] = f.net->stats().messages[static_cast<int>(sim::TrafficClass::kCrossShard)];
  }
  EXPECT_LT(cross[0], cross[1]);
}

}  // namespace
}  // namespace jenga::baselines
