// Stuck-2PC recovery ladder (core/recovery.hpp, DESIGN.md §14): policy unit
// tests, an end-to-end scenario where a partition wedges cross-shard transfer
// rounds and the ladder heals every one of them, the observe-only contrast
// (recovery disabled => the wedge is permanent), gray fault plans, and the
// bit-identity contract: self-healing on vs off changes nothing in a clean
// run, on Jenga and the baselines, across exec worker counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/jenga_system.hpp"
#include "core/recovery.hpp"
#include "harness/genesis.hpp"
#include "harness/runner.hpp"
#include "security/fault_injector.hpp"
#include "workload/trace.hpp"

namespace jenga {
namespace {

using core::JengaConfig;
using core::JengaSystem;
using core::LadderAction;
using core::LadderState;
using core::RecoveryConfig;
using security::check_invariants;
using security::FaultInjector;
using security::FaultPlan;
using security::GrayFault;
using security::GrayFaultKind;
using security::InvariantReport;

TEST(RecoveryLadder, ProbesThenEscalatesWithBackoff) {
  RecoveryConfig cfg;
  cfg.max_rerequests = 2;
  cfg.backoff = 10 * kSecond;
  LadderState st;

  // First action fires the moment the entry is flagged.
  EXPECT_EQ(ladder_next(cfg, st, 100 * kSecond), LadderAction::kProbe);
  // Backoff gates the next rung.
  EXPECT_EQ(ladder_next(cfg, st, 105 * kSecond), LadderAction::kWait);
  EXPECT_EQ(ladder_next(cfg, st, 110 * kSecond), LadderAction::kProbe);
  // Re-requests exhausted: escalate to the coordinated force-abort, and keep
  // re-asking every backoff until a reply settles the round.
  EXPECT_EQ(ladder_next(cfg, st, 120 * kSecond), LadderAction::kAbortQuery);
  EXPECT_EQ(ladder_next(cfg, st, 125 * kSecond), LadderAction::kWait);
  EXPECT_EQ(ladder_next(cfg, st, 130 * kSecond), LadderAction::kAbortQuery);
}

TEST(RecoveryLadder, DisabledNeverActs) {
  RecoveryConfig cfg;
  cfg.enabled = false;
  LadderState st;
  EXPECT_EQ(ladder_next(cfg, st, 100 * kSecond), LadderAction::kWait);
  EXPECT_EQ(ladder_next(cfg, st, 1000 * kSecond), LadderAction::kWait);
  EXPECT_EQ(st.rung, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end fixture (mirrors test_chaos's ChaosFixture, transfer workload)
// ---------------------------------------------------------------------------

struct RecoveryFixture {
  explicit RecoveryFixture(JengaConfig cfg, std::uint64_t workload_seed = 7) {
    workload::TraceConfig tc;
    tc.num_contracts = 150;
    tc.num_accounts = 200;
    gen = std::make_unique<workload::TraceGenerator>(tc, Rng(workload_seed));
    net = std::make_unique<sim::Network>(sim, sim::NetConfig{}, Rng(cfg.seed));
    system = std::make_unique<JengaSystem>(sim, *net, cfg, harness::make_genesis(*gen));
    injector = std::make_unique<FaultInjector>(sim, *net, *system);
    initial_balance = system->total_account_balance();
    system->start();
  }

  void submit_transfers(int n, SimTime spacing) {
    for (int i = 0; i < n; ++i) {
      sim.run_until(sim.now() + spacing);
      auto tx = std::make_shared<ledger::Transaction>(gen->transfer_tx(sim.now()));
      system->submit(tx);
    }
  }

  sim::Simulator sim;
  std::unique_ptr<workload::TraceGenerator> gen;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<JengaSystem> system;
  std::unique_ptr<FaultInjector> injector;
  std::uint64_t initial_balance = 0;
};

JengaConfig recovery_config() {
  JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 600 * kSecond;
  cfg.twopc_stuck_timeout = 10 * kSecond;
  cfg.recovery.backoff = 8 * kSecond;
  return cfg;
}

/// A partition swallows the one-shot 2PC legs of every transfer in flight
/// across it.  After it heals, the watchdog's ladder must settle every
/// flagged round — nothing stays wedged, and no money leaks either way.
TEST(Recovery, PartitionWedgedRoundsHealViaLadder) {
  RecoveryFixture f(recovery_config());
  const auto members = f.system->lattice().shard_members(ShardId{1});
  const std::vector<NodeId> shard1(members.begin(), members.end());

  FaultPlan plan;
  plan.partitions.push_back({2 * kSecond, 45 * kSecond, shard1, 1});
  f.injector->arm(plan);

  f.submit_transfers(16, 500 * kMillisecond);
  f.sim.run_until(200 * kSecond);

  const auto& st = f.system->stats();
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(st.committed + st.aborted, 16u) << "limbo txs: " << f.system->in_flight();
  // Rounds really were wedged (prepares/acks died in the partition window)...
  EXPECT_GT(f.system->twopc_stuck_total(), 0u);
  EXPECT_GT(f.net->fault_stats().partition_blocked, 0u);
  // ...and every one of them was settled by the ladder, not by luck.
  EXPECT_EQ(f.system->twopc_stuck_now(), 0u);
  const auto& rec = f.system->recovery_stats();
  EXPECT_GT(rec.probes_sent + rec.abort_queries, 0u);
  EXPECT_GT(rec.resolved + rec.refunds, 0u);
}

/// The same schedule with the ladder disabled: the wedge is permanent.  This
/// is the liveness hole the recovery subsystem exists to close.
TEST(Recovery, ObserveOnlyLeavesWedgedRoundsStuck) {
  JengaConfig cfg = recovery_config();
  cfg.recovery.enabled = false;
  RecoveryFixture f(cfg);
  const auto members = f.system->lattice().shard_members(ShardId{1});
  const std::vector<NodeId> shard1(members.begin(), members.end());

  FaultPlan plan;
  plan.partitions.push_back({2 * kSecond, 45 * kSecond, shard1, 1});
  f.injector->arm(plan);

  f.submit_transfers(16, 500 * kMillisecond);
  f.sim.run_until(200 * kSecond);

  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(f.system->twopc_stuck_now(), 0u);
  EXPECT_GT(f.system->in_flight(), 0u);
  const auto& rec = f.system->recovery_stats();
  EXPECT_EQ(rec.probes_sent, 0u);
  EXPECT_EQ(rec.abort_queries, 0u);
}

/// Gray degradations (lossy NIC, slow node, degraded link) never break
/// safety: the run completes, balances conserve, and the scripted windows
/// actually fired (inbound losses were charged to the gray counter).
TEST(Recovery, GrayFaultWindowsCompleteAndConserve) {
  RecoveryFixture f(recovery_config());
  const auto s0 = f.system->lattice().shard_members(ShardId{0});
  const auto s1 = f.system->lattice().shard_members(ShardId{1});

  FaultPlan plan;
  GrayFault lossy;
  lossy.kind = GrayFaultKind::kLossyNic;
  lossy.at = 2 * kSecond;
  lossy.duration = 23 * kSecond;
  lossy.node = s0[1];
  lossy.drop_rate = 0.4;
  plan.gray.push_back(lossy);
  GrayFault slow;
  slow.kind = GrayFaultKind::kSlowNode;
  slow.at = 2 * kSecond;
  slow.duration = 23 * kSecond;
  slow.node = s1[1];
  slow.serialize_factor = 8.0;
  slow.proc_delay = 2 * kMillisecond;
  plan.gray.push_back(slow);
  GrayFault link;
  link.kind = GrayFaultKind::kLinkDegrade;
  link.at = 2 * kSecond;
  link.duration = 23 * kSecond;
  link.node = s0[2];
  link.peer = s1[2];
  link.extra_delay = 50 * kMillisecond;
  plan.gray.push_back(link);
  f.injector->arm(plan);
  EXPECT_EQ(f.injector->events_armed(), plan.event_count());

  f.submit_transfers(16, 500 * kMillisecond);
  f.sim.run_until(300 * kSecond);

  const auto& st = f.system->stats();
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(st.committed + st.aborted, 16u) << "limbo txs: " << f.system->in_flight();
  EXPECT_GT(f.net->fault_stats().gray_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Runner-level wiring
// ---------------------------------------------------------------------------

harness::RunConfig runner_config(harness::SystemKind kind, std::uint32_t workers,
                                 bool self_healing) {
  harness::RunConfig rc;
  rc.kind = kind;
  rc.num_shards = 2;
  rc.nodes_per_shard = 8;
  rc.seed = 5;
  rc.contract_txs = 30;
  rc.transfer_txs = 15;
  rc.inject_window = 10 * kSecond;
  rc.max_sim_time = 900 * kSecond;
  rc.exec_workers = workers;
  rc.self_healing = self_healing;
  return rc;
}

/// The acceptance bar from the issue: with the detector attached and no
/// faults, every digest and the full metric registry are bit-identical to a
/// detector-free run — on Jenga and the baselines, serial and parallel exec.
TEST(Recovery, SelfHealingToggleIsBitIdenticalOnCleanRuns) {
  const harness::SystemKind kinds[] = {
      harness::SystemKind::kJenga,
      harness::SystemKind::kCxFunc,
      harness::SystemKind::kSingleShard,
      harness::SystemKind::kPyramid,
  };
  for (const auto kind : kinds) {
    for (const std::uint32_t workers : {1u, 4u}) {
      const auto off = harness::run_experiment(runner_config(kind, workers, false));
      const auto on = harness::run_experiment(runner_config(kind, workers, true));
      const std::string label = std::string(harness::system_name(kind)) +
                                " workers=" + std::to_string(workers);
      EXPECT_EQ(off.ledger_digest, on.ledger_digest) << label;
      EXPECT_EQ(off.state_digest, on.state_digest) << label;
      EXPECT_EQ(off.telemetry->registry.to_json(), on.telemetry->registry.to_json())
          << label;
      // Sampling ran in the healing run but never actuated or folded.
      EXPECT_GT(on.detector.samples, 0u) << label;
      EXPECT_EQ(on.detector.suspicions, 0u) << label;
    }
  }
}

/// A scripted gray plan arms the detector through the runner: sampling is
/// live, the windows fire, and the run still completes and conserves.
TEST(Recovery, RunnerArmsDetectorUnderGrayPlan) {
  harness::RunConfig rc = runner_config(harness::SystemKind::kJenga, 1, true);
  GrayFault lossy;
  lossy.kind = GrayFaultKind::kLossyNic;
  lossy.at = 2 * kSecond;
  lossy.duration = 18 * kSecond;
  lossy.node = NodeId{1};
  lossy.drop_rate = 0.3;
  rc.faults_plan.gray.push_back(lossy);
  GrayFault slow;
  slow.kind = GrayFaultKind::kSlowNode;
  slow.at = 2 * kSecond;
  slow.duration = 18 * kSecond;
  slow.node = NodeId{9};
  slow.serialize_factor = 6.0;
  slow.proc_delay = kMillisecond;
  rc.faults_plan.gray.push_back(slow);

  const auto result = harness::run_experiment(rc);
  EXPECT_EQ(result.stats.committed + result.stats.aborted, 45u);
  EXPECT_GT(result.detector.samples, 0u);
  EXPECT_GT(result.faults.gray_dropped, 0u);
}

}  // namespace
}  // namespace jenga
