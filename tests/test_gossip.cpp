// Dissemination subsystem (src/gossip/, DESIGN.md §12): push-pull rumor
// mongering with dup-drop, per-(sender,group) relay batching, and the
// system-level properties the subsystem promises — certified outcomes reach
// every honest member under loss without sender re-gossip, and determinism
// witnesses hold across transports and exec worker counts.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/jenga_system.hpp"
#include "gossip/batch.hpp"
#include "gossip/rumor.hpp"
#include "harness/genesis.hpp"
#include "harness/runner.hpp"
#include "security/fault_injector.hpp"
#include "workload/trace.hpp"

namespace jenga {
namespace {

struct TagPayload : sim::Payload {
  explicit TagPayload(int v) : value(v) {}
  int value;
};

// ---------------------------------------------------------------------------
// RumorMesh unit tests: one mesh over one simulated network, handlers count
// the inner deliveries (transport messages are consumed by the mesh itself).

struct MeshHarness {
  explicit MeshHarness(std::uint32_t n, sim::NetConfig cfg = {}, std::uint64_t seed = 7)
      : net(sim, cfg, Rng(seed)),
        mesh(net, gossip::RumorConfig{}, Rng(seed ^ 0x52554D52ULL)) {
    net.set_rumor_mesh(&mesh);
    counts.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      group.push_back(NodeId{i});
      net.register_node(NodeId{i}, [this, i](const sim::Message&) { ++counts[i]; });
    }
  }

  static sim::Message inner(int tag) {
    return sim::make_message<TagPayload>(sim::MsgType::kClientTx, NodeId{0}, 600, tag);
  }

  sim::Simulator sim;
  sim::Network net;
  gossip::RumorMesh mesh;
  std::vector<NodeId> group;
  std::vector<int> counts;
};

TEST(RumorMesh, DupDropIdempotentAcrossRelays) {
  MeshHarness h(16);
  const std::uint64_t id = sim::rumor_id_mix(0xA1, 1, 2, 3);
  // Three subgroup relays start the same certified batch; a fourth call from
  // an already-spreading relay is a no-op.
  h.mesh.broadcast(NodeId{0}, h.group, id, MeshHarness::inner(1), sim::TrafficClass::kIntraShard);
  h.mesh.broadcast(NodeId{1}, h.group, id, MeshHarness::inner(1), sim::TrafficClass::kIntraShard);
  h.mesh.broadcast(NodeId{2}, h.group, id, MeshHarness::inner(1), sim::TrafficClass::kIntraShard);
  h.mesh.broadcast(NodeId{0}, h.group, id, MeshHarness::inner(1), sim::TrafficClass::kIntraShard);
  h.sim.run_until_idle();

  const auto& st = h.mesh.stats();
  EXPECT_EQ(st.rumors_started, 3u);  // the repeat from node 0 merged
  // Relays hold their own copy without self-delivery; everyone else gets the
  // inner message exactly once no matter how many spreads merged.
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(h.counts[i], i < 3 ? 0 : 1) << "node " << i;
  }
  EXPECT_EQ(st.delivered, 13u);
  EXPECT_GT(st.dups_dropped, 0u);  // merged spreads collided somewhere
  EXPECT_EQ(st.covered_rumors, 1u);
}

TEST(RumorMesh, LosslessCoverageWithinPushBudget) {
  MeshHarness h(32);
  h.mesh.broadcast(NodeId{0}, h.group, 0xBEEF, MeshHarness::inner(1),
                   sim::TrafficClass::kIntraShard);
  h.sim.run_until_idle();

  const auto& st = h.mesh.stats();
  EXPECT_EQ(st.covered_rumors, 1u);
  EXPECT_EQ(st.delivered, 31u);
  ASSERT_EQ(st.coverage_rounds.size(), 1u);
  // Push budget B = ceil(log2 31) + 2 = 7 rounds; lossless coverage must land
  // inside the push phase (plus slack for per-hop latency), far below O(n).
  EXPECT_GE(st.coverage_rounds[0], 1u);
  EXPECT_LE(st.coverage_rounds[0], 14u);
  // Constant-fanout budget: every holder pushes at most fanout per round for
  // B rounds, plus low-rate anti-entropy pings over the retention window.
  const gossip::RumorConfig& cfg = h.mesh.config();
  const std::uint64_t push_phase = 32 * 7 * cfg.fanout;
  const std::uint64_t ping_phase =
      32 * (static_cast<std::uint64_t>(cfg.retention / cfg.round_interval) /
            cfg.anti_entropy_every + 2);
  EXPECT_LE(st.pushes_sent, push_phase + ping_phase);
}

TEST(RumorMesh, PullRepairConvergesUnderLossAndDuplication) {
  MeshHarness h(24);
  sim::LinkFaults faults;
  faults.drop_rate = 0.15;
  faults.duplicate_rate = 0.05;
  faults.extra_delay_max = 40 * kMillisecond;
  h.net.set_fault_profile(faults);

  for (int r = 0; r < 6; ++r) {
    h.sim.schedule_at(r * 200 * kMillisecond, [&h, r] {
      h.mesh.broadcast(NodeId{static_cast<std::uint32_t>(r * 4)}, h.group,
                       0xC0FFEE00u + static_cast<std::uint64_t>(r), MeshHarness::inner(r),
                       sim::TrafficClass::kIntraShard);
    });
  }
  h.sim.run_until_idle();

  const auto& st = h.mesh.stats();
  EXPECT_GT(h.net.fault_stats().dropped, 0u) << "profile never fired";
  // Every rumor reaches every member exactly once despite the losses: pushes
  // that died are repaired by digest pings + pulls, and duplicated transport
  // copies are absorbed by dup-drop.
  EXPECT_EQ(st.covered_rumors, 6u);
  EXPECT_EQ(st.delivered, 6u * 23u);
  for (std::uint32_t i = 0; i < 24; ++i) {
    EXPECT_EQ(h.counts[i], i % 4 == 0 && i / 4 < 6 ? 5 : 6) << "node " << i;
  }
}

TEST(RumorMesh, PartitionHealedWithinRetentionIsRepaired) {
  MeshHarness h(16);
  const NodeId island[] = {NodeId{12}, NodeId{13}, NodeId{14}, NodeId{15}};
  h.net.partition(island, 1);
  h.mesh.broadcast(NodeId{0}, h.group, 0xD00D, MeshHarness::inner(1),
                   sim::TrafficClass::kIntraShard);
  h.sim.run_until(3 * kSecond);
  for (std::uint32_t i = 12; i < 16; ++i) EXPECT_EQ(h.counts[i], 0) << "leaked into island";
  EXPECT_EQ(h.mesh.stats().covered_rumors, 0u);

  // Heal well inside the 30 s retention window: majority-side holders keep
  // advertising the id in anti-entropy pings, the island pulls the payload.
  h.net.heal_partitions();
  h.sim.run_until_idle();
  const auto& st = h.mesh.stats();
  EXPECT_EQ(st.covered_rumors, 1u);
  EXPECT_EQ(st.delivered, 15u);
  EXPECT_GT(st.pull_requests, 0u);
  EXPECT_GT(st.pull_responses, 0u);
  for (std::uint32_t i = 1; i < 16; ++i) EXPECT_EQ(h.counts[i], 1) << "node " << i;
}

TEST(RumorMesh, SameSeedSameSpreadUnderFaults) {
  gossip::RumorStats first;
  sim::FaultStats first_faults;
  for (int round = 0; round < 2; ++round) {
    MeshHarness h(20, sim::NetConfig{}, /*seed=*/99);
    sim::LinkFaults faults;
    faults.drop_rate = 0.2;
    faults.duplicate_rate = 0.1;
    faults.extra_delay_max = 30 * kMillisecond;
    h.net.set_fault_profile(faults);
    for (int r = 0; r < 4; ++r) {
      h.mesh.broadcast(NodeId{static_cast<std::uint32_t>(r)}, h.group,
                       0xFEED0000u + static_cast<std::uint64_t>(r), MeshHarness::inner(r),
                       sim::TrafficClass::kIntraShard);
    }
    h.sim.run_until_idle();
    if (round == 0) {
      first = h.mesh.stats();
      first_faults = h.net.fault_stats();
    } else {
      const auto& st = h.mesh.stats();
      EXPECT_EQ(st.pushes_sent, first.pushes_sent);
      EXPECT_EQ(st.pull_requests, first.pull_requests);
      EXPECT_EQ(st.pull_responses, first.pull_responses);
      EXPECT_EQ(st.dups_dropped, first.dups_dropped);
      EXPECT_EQ(st.delivered, first.delivered);
      EXPECT_EQ(st.coverage_rounds, first.coverage_rounds);
      EXPECT_EQ(h.net.fault_stats().dropped, first_faults.dropped);
    }
  }
}

// ---------------------------------------------------------------------------
// Batcher: window coalescing and co-relay frame dedup.

TEST(Batcher, CoalescesAWindowAndCoRelayFramesDedupToOneSpread) {
  sim::NetConfig cfg;
  cfg.transports[static_cast<std::size_t>(sim::BroadcastKind::kRelay)] =
      sim::Transport::kRumor;
  MeshHarness h(12, cfg);
  gossip::Batcher batcher(h.net, 100 * kMillisecond);

  // Two co-deciding relays enqueue the same four certified items inside the
  // same window; the aligned flush makes the frames byte-identical.
  for (int relay = 0; relay < 2; ++relay) {
    for (int i = 0; i < 4; ++i) {
      batcher.enqueue(NodeId{static_cast<std::uint32_t>(relay)}, h.group,
                      0xAB000000u + static_cast<std::uint64_t>(i), MeshHarness::inner(i),
                      sim::TrafficClass::kIntraShard);
    }
  }
  h.sim.run_until_idle();

  const auto& bs = batcher.stats();
  EXPECT_EQ(bs.items_enqueued, 8u);
  EXPECT_EQ(bs.frames_sent, 2u);  // one frame per relay...
  EXPECT_EQ(bs.max_frame_items, 4u);
  // ...but both frames carry the same item set, so they fold to the same
  // rumor id and the mesh merges them into ONE spread: every non-relay node
  // receives exactly one kBatchFrame. Relays hold their mesh copy without
  // self-delivery, but the batcher hands each relay its own frame locally so
  // its certs enter the pooled-verification window like everyone else's —
  // so every node, relay or not, sees the frame exactly once.
  EXPECT_EQ(h.mesh.stats().rumors_started, 2u);
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(h.counts[i], 1) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Full system on the rumor transport: certified outcomes reach every honest
// member under a drop profile with NO sender re-gossip (the regression test
// for retiring the loss-compensating triple re-gossip), and frame-pooled
// aggregate verification actually runs.

struct SystemFixture {
  explicit SystemFixture(const sim::NetConfig& ncfg, core::JengaConfig cfg,
                         std::uint64_t workload_seed = 7) {
    workload::TraceConfig tc;
    tc.num_contracts = 150;
    tc.num_accounts = 200;
    tc.max_contracts_per_tx = 4;
    tc.max_steps = 8;
    gen = std::make_unique<workload::TraceGenerator>(tc, Rng(workload_seed));
    net = std::make_unique<sim::Network>(sim, ncfg, Rng(cfg.seed));
    system = std::make_unique<core::JengaSystem>(sim, *net, cfg, harness::make_genesis(*gen));
    initial_balance = system->total_account_balance();
    system->start();
  }

  void submit_workload(int n, SimTime spacing) {
    for (int i = 0; i < n; ++i) {
      sim.run_until(sim.now() + spacing);
      auto tx = std::make_shared<ledger::Transaction>(gen->contract_tx(1'000'000, sim.now()));
      system->submit(tx);
    }
  }

  sim::Simulator sim;
  std::unique_ptr<workload::TraceGenerator> gen;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<core::JengaSystem> system;
  std::uint64_t initial_balance = 0;
};

TEST(RumorSystem, CertifiedOutcomesReachAllMembersUnderDrops) {
  core::JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 300 * kSecond;
  sim::NetConfig ncfg;
  ncfg.set_all_transports(sim::Transport::kRumor);

  SystemFixture f(ncfg, cfg);
  sim::LinkFaults lossy;
  lossy.drop_rate = 0.10;
  f.net->set_fault_profile(lossy);

  f.submit_workload(20, kSecond);
  f.sim.run_until(600 * kSecond);

  const auto& st = f.system->stats();
  EXPECT_EQ(st.committed + st.aborted, 20u) << "limbo txs: " << f.system->in_flight();
  EXPECT_GE(st.committed, 18u) << "committed=" << st.committed << " aborted=" << st.aborted;
  const security::InvariantReport report =
      security::check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_GT(f.net->fault_stats().dropped, 0u);

  // The pull-based repair did the work the retired re-gossip used to do.
  ASSERT_NE(f.system->rumor_mesh(), nullptr);
  const auto& rs = f.system->rumor_mesh()->stats();
  EXPECT_GT(rs.rumors_started, 0u);
  EXPECT_GT(rs.dups_dropped, 0u);
  // Relay certificates were verified (pooled per frame where batched) and
  // none were forged.
  const core::CertVerifyStats& cs = f.system->cert_stats();
  EXPECT_GT(cs.batch_passes, 0u);
  // Per-frame pooling: one aggregated pass covers every signed cert in the
  // frame (amortization across many certs per frame is a load/scale property
  // measured by bench_ablation_dissemination, not asserted here).
  EXPECT_GE(cs.batch_certs, cs.batch_passes);
  EXPECT_EQ(cs.invalid_certs, 0u);
  EXPECT_EQ(cs.batch_fallbacks, 0u);
}

// ---------------------------------------------------------------------------
// Determinism witnesses across transports and exec worker counts.

harness::RunConfig digest_run(sim::Transport t, std::uint32_t workers) {
  harness::RunConfig cfg;
  cfg.kind = harness::SystemKind::kJenga;
  cfg.num_shards = 4;
  cfg.nodes_per_shard = 8;
  cfg.contract_txs = 60;
  cfg.inject_window = 30 * kSecond;
  cfg.max_sim_time = 900 * kSecond;
  cfg.exec_workers = workers;
  // Conflict-light workload: contention would make the commit/abort split
  // timing-dependent, which is exactly what the cross-transport witness must
  // exclude (the per-transport schedules differ by design).
  cfg.trace.num_contracts = 4000;
  cfg.trace.num_accounts = 4000;
  cfg.trace.max_contracts_per_tx = 2;
  cfg.trace.max_steps = 6;
  cfg.net.set_all_transports(t);
  return cfg;
}

TEST(DisseminationWitness, StateDigestBitIdenticalAcrossTransportsAndWorkers) {
  constexpr sim::Transport kModes[] = {sim::Transport::kNaive, sim::Transport::kTree,
                                       sim::Transport::kRumor};
  Hash256 state_ref{};
  bool have_ref = false;
  for (const sim::Transport t : kModes) {
    const harness::RunResult r1 = harness::run_experiment(digest_run(t, 1));
    const harness::RunResult r4 = harness::run_experiment(digest_run(t, 4));
    ASSERT_EQ(r1.stats.committed + r1.stats.aborted, 60u) << sim::transport_name(t);
    EXPECT_EQ(r1.stats.aborted, 0u) << sim::transport_name(t);
    // Within a transport, worker count changes nothing at all.
    EXPECT_EQ(r1.ledger_digest, r4.ledger_digest) << sim::transport_name(t);
    EXPECT_EQ(r1.state_digest, r4.state_digest) << sim::transport_name(t);
    // Across transports, schedules (and thus chain tips) differ, but the
    // final authenticated state + outcome counts must be bit-identical.
    if (!have_ref) {
      state_ref = r1.state_digest;
      have_ref = true;
    } else {
      EXPECT_EQ(r1.state_digest, state_ref) << sim::transport_name(t);
    }
  }
}

TEST(DisseminationWitness, RumorTelemetryFoldedAndTraceLintClean) {
  harness::RunConfig cfg = digest_run(sim::Transport::kRumor, 1);
  cfg.causal_trace = true;
  const harness::RunResult r = harness::run_experiment(cfg);
  ASSERT_EQ(r.stats.committed + r.stats.aborted, 60u);

  // The dissemination counters made it into the run result and the registry
  // snapshot.
  EXPECT_GT(r.rumor.rumors_started, 0u);
  EXPECT_GT(r.rumor.pushes_sent, 0u);
  EXPECT_GT(r.rumor.delivered, 0u);
  EXPECT_GT(r.rumor.covered_rumors, 0u);
  EXPECT_GT(r.relay_batches.frames_sent, 0u);
  const std::string snapshot = r.telemetry->registry.to_json();
  EXPECT_NE(snapshot.find("net.rumor.pushes"), std::string::npos);
  EXPECT_NE(snapshot.find("net.rumor.rounds_to_coverage"), std::string::npos);
  EXPECT_NE(snapshot.find("net.batch.frames"), std::string::npos);
  EXPECT_NE(snapshot.find("relay.batch_passes"), std::string::npos);
  EXPECT_NE(snapshot.find("net.node_msgs_mean"), std::string::npos);

  // Rumor hops parent on the inbound carrying copy: the exported causal trace
  // still satisfies the shared schema/lint checker.
  std::ostringstream out;
  r.telemetry->export_jsonl(out);
  std::istringstream in(out.str());
  std::string err;
  telemetry::TraceLintSummary sum;
  ASSERT_TRUE(telemetry::validate_trace_stream(in, &err, &sum)) << err;
  EXPECT_GT(sum.cspan_lines, 0u);
}

// ---------------------------------------------------------------------------
// Byzantine gossip (DESIGN.md §14 guards): tampered pull responses and forged
// batch frames are rejected, pull-request floods are throttled, and the
// guards cost nothing in clean runs — digests stay bit-identical.

TEST(ByzantineGossip, TamperedPullResponseEntriesRejected) {
  MeshHarness h(16);
  h.mesh.broadcast(NodeId{0}, h.group, 0xFACE, MeshHarness::inner(1),
                   sim::TrafficClass::kIntraShard);
  h.sim.run_until(3 * kSecond);
  ASSERT_EQ(h.mesh.stats().covered_rumors, 1u);

  // Node 5 forges a pull response to node 3: one entry nobody requested (an
  // injected payload under a fresh id) and one rewrite of the known rumor.
  auto payload = std::make_shared<gossip::RumorPushPayload>();
  payload->group_key = gossip::group_key_of(h.group);
  gossip::RumorPushPayload::Entry forged;
  forged.id = 0xBAD0BAD0;
  forged.inner = MeshHarness::inner(66);
  payload->entries.push_back(std::move(forged));
  gossip::RumorPushPayload::Entry rewrite;
  rewrite.id = 0xFACE;
  rewrite.inner = MeshHarness::inner(67);
  payload->entries.push_back(std::move(rewrite));
  sim::Message m;
  m.type = sim::MsgType::kRumorPullResp;
  m.from = NodeId{5};
  m.size_bytes = payload->wire_size();
  m.payload = std::move(payload);
  h.net.send(NodeId{5}, NodeId{3}, m, sim::TrafficClass::kIntraShard);
  h.sim.run_until_idle();

  const auto& st = h.mesh.stats();
  // The unsolicited id was rejected, the rewrite of a held rumor dup-dropped;
  // neither smuggled a delivery, and coverage is unchanged.
  EXPECT_EQ(st.resp_rejected, 1u);
  EXPECT_EQ(st.covered_rumors, 1u);
  for (std::uint32_t i = 1; i < 16; ++i) EXPECT_EQ(h.counts[i], 1) << "node " << i;
}

TEST(ByzantineGossip, PullRequestFloodThrottledWithoutHarmingRepair) {
  MeshHarness h(16);
  h.mesh.broadcast(NodeId{0}, h.group, 0xFEED, MeshHarness::inner(1),
                   sim::TrafficClass::kIntraShard);
  h.sim.run_until(3 * kSecond);
  ASSERT_EQ(h.mesh.stats().covered_rumors, 1u);
  const std::uint64_t responses_before = h.mesh.stats().pull_responses;

  // Node 5 hammers node 0 with 200 pull requests for an id it already holds —
  // the amplification attack the per-(server,requester) window exists for.
  for (int i = 0; i < 200; ++i) {
    auto req = std::make_shared<gossip::RumorPullPayload>();
    req->group_key = gossip::group_key_of(h.group);
    req->ids.push_back(0xFEED);
    sim::Message m;
    m.type = sim::MsgType::kRumorPullReq;
    m.from = NodeId{5};
    m.size_bytes = req->wire_size();
    m.payload = std::move(req);
    h.net.send(NodeId{5}, NodeId{0}, m, sim::TrafficClass::kIntraShard);
  }
  h.sim.run_until_idle();

  const auto& st = h.mesh.stats();
  EXPECT_GT(st.pulls_throttled, 0u);
  // Served responses stay bounded by the per-window ceiling, not the flood.
  EXPECT_LT(st.pull_responses - responses_before, 200u);
  EXPECT_EQ(st.covered_rumors, 1u);
}

TEST(ByzantineGossip, ForgedBatchFrameRejectedWholeAndRunUnharmed) {
  core::JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 300 * kSecond;
  sim::NetConfig ncfg;
  ncfg.set_all_transports(sim::Transport::kRumor);

  SystemFixture f(ncfg, cfg);
  f.submit_workload(10, kSecond);

  // A forged frame: sorted items folded under a stolen identity.  The fold
  // check at the receiver rejects it whole before any item is unpacked.
  auto frame = std::make_shared<gossip::BatchFramePayload>();
  gossip::BatchFramePayload::Item item;
  item.rumor_id = 0x1111;
  item.inner = sim::make_message<TagPayload>(sim::MsgType::kClientTx, NodeId{1}, 600, 5);
  frame->items.push_back(std::move(item));
  frame->frame_id = 0xDEADBEEF;  // != fold_frame_id(items)
  ASSERT_FALSE(gossip::frame_id_matches(*frame));
  sim::Message m;
  m.type = sim::MsgType::kBatchFrame;
  m.from = NodeId{1};
  m.size_bytes = frame->wire_size();
  m.payload = std::move(frame);
  f.net->send(NodeId{1}, NodeId{2}, m, sim::TrafficClass::kIntraShard);

  f.sim.run_until(300 * kSecond);

  ASSERT_NE(f.system->batcher(), nullptr);
  EXPECT_EQ(f.system->batcher()->stats().frames_rejected, 1u);
  // The rejection cost nothing: the workload still completes and conserves.
  const auto& st = f.system->stats();
  EXPECT_EQ(st.committed + st.aborted, 10u) << "limbo txs: " << f.system->in_flight();
  const security::InvariantReport report =
      security::check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
}

TEST(ByzantineGossip, GuardsAreFreeInCleanRuns) {
  // With every guard compiled in and no adversary, nothing trips and repeated
  // runs are bit-identical — the guards never perturb honest schedules.
  const harness::RunResult r1 = harness::run_experiment(digest_run(sim::Transport::kRumor, 1));
  const harness::RunResult r2 = harness::run_experiment(digest_run(sim::Transport::kRumor, 1));
  EXPECT_EQ(r1.rumor.pulls_throttled, 0u);
  EXPECT_EQ(r1.rumor.resp_rejected, 0u);
  EXPECT_EQ(r1.relay_batches.frames_rejected, 0u);
  EXPECT_EQ(r1.ledger_digest, r2.ledger_digest);
  EXPECT_EQ(r1.state_digest, r2.state_digest);
  EXPECT_EQ(r1.telemetry->registry.to_json(), r2.telemetry->registry.to_json());
}

}  // namespace
}  // namespace jenga
