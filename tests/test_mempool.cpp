// Admission-layer tests: bounded fee-priority mempool semantics (ordering,
// aging, eviction, TTL, reason codes), ingress routing/backpressure/digest
// determinism, trace-replay purity, the 2PC stuck watchdog, and full-run
// determinism of the open-loop path across exec worker counts on Jenga and
// all three baselines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/genesis.hpp"
#include "harness/runner.hpp"
#include "ledger/transaction.hpp"
#include "mempool/ingress.hpp"
#include "mempool/mempool.hpp"
#include "security/fault_injector.hpp"

namespace jenga::mempool {
namespace {

core::TxPtr transfer(std::uint64_t from, std::uint64_t to, std::uint64_t fee,
                     std::uint64_t amount = 5, SimTime at = 0) {
  return std::make_shared<const ledger::Transaction>(
      ledger::make_transfer(AccountId{from}, AccountId{to}, amount, fee, at));
}

TEST(Mempool, FeePriorityOrder) {
  Mempool pool(MempoolConfig{.capacity = 8, .ttl = 100 * kSecond, .aging_fee_per_second = 0});
  auto low = transfer(1, 2, 5), high = transfer(3, 4, 50), mid = transfer(5, 6, 20);
  EXPECT_EQ(pool.offer(low, 0, 0).result, AdmitResult::kAdmitted);
  EXPECT_EQ(pool.offer(high, 0, 2).result, AdmitResult::kAdmitted);
  EXPECT_EQ(pool.offer(mid, 0, 1).result, AdmitResult::kAdmitted);
  EXPECT_EQ(pool.pop_best(0)->tx->fee, 50u);
  EXPECT_EQ(pool.pop_best(0)->tx->fee, 20u);
  EXPECT_EQ(pool.pop_best(0)->tx->fee, 5u);
  EXPECT_FALSE(pool.pop_best(0).has_value());
}

TEST(Mempool, EqualFeeTieBreakIsFifo) {
  Mempool pool(MempoolConfig{.capacity = 8, .ttl = 100 * kSecond, .aging_fee_per_second = 0});
  auto first = transfer(1, 2, 10), second = transfer(3, 4, 10);
  pool.offer(first, 0, 0);
  pool.offer(second, 0, 0);
  EXPECT_EQ(pool.pop_best(0)->tx->hash, first->hash);  // older wins the tie
  EXPECT_EQ(pool.pop_best(0)->tx->hash, second->hash);
}

TEST(Mempool, AgingPromotesOldLowFeeOverNewHighFee) {
  // Effective priority = fee + 10/s of waiting.  A fee-10 tx enqueued at t=0
  // outranks a fee-30 tx enqueued at t=5s (10 + 10·w vs 30 + 10·(w-5):
  // the old one leads by 30 at any comparison instant).
  Mempool pool(MempoolConfig{.capacity = 8, .ttl = 100 * kSecond, .aging_fee_per_second = 10});
  auto old_low = transfer(1, 2, 10), new_high = transfer(3, 4, 30);
  pool.offer(old_low, 0, 0);
  pool.offer(new_high, 5 * kSecond, 2);
  EXPECT_EQ(pool.pop_best(6 * kSecond)->tx->hash, old_low->hash);
  // Without aging the fee-30 tx would win outright.
  Mempool flat(MempoolConfig{.capacity = 8, .ttl = 100 * kSecond, .aging_fee_per_second = 0});
  pool = flat;
  pool.offer(old_low, 0, 0);
  pool.offer(new_high, 5 * kSecond, 2);
  EXPECT_EQ(pool.pop_best(6 * kSecond)->tx->hash, new_high->hash);
}

TEST(Mempool, PriorityKeyIsStaticAndOrderEquivalent) {
  // key(fee, t0) > key(fee, t1) for t0 < t1: waiting longer only helps.
  EXPECT_GT(Mempool::priority_key(10, 0, 2), Mempool::priority_key(10, kSecond, 2));
  // Cross-check against the time-dependent formulation at a probe instant.
  const auto eff = [](std::uint64_t fee, SimTime enq, SimTime now) {
    return static_cast<double>(fee) + 2.0 * static_cast<double>(now - enq) / kSecond;
  };
  const SimTime probe = 40 * kSecond;
  const bool key_order =
      Mempool::priority_key(10, 0, 2) > Mempool::priority_key(50, 25 * kSecond, 2);
  const bool eff_order = eff(10, 0, probe) > eff(50, 25 * kSecond, probe);
  EXPECT_EQ(key_order, eff_order);
}

TEST(Mempool, FullPoolEvictsLowestPriorityOnlyWhenOutranked) {
  Mempool pool(MempoolConfig{.capacity = 2, .ttl = 100 * kSecond, .aging_fee_per_second = 0});
  auto a = transfer(1, 2, 10), b = transfer(3, 4, 10);
  pool.offer(a, 0, 0);
  pool.offer(b, 0, 0);

  // Equal fee: the resident wins the tie, the newcomer is rejected with a code.
  auto equal = transfer(5, 6, 10);
  const auto rejected = pool.offer(equal, kSecond, 0);
  EXPECT_EQ(rejected.result, AdmitResult::kRejectedFull);
  EXPECT_FALSE(rejected.evicted);
  EXPECT_EQ(pool.depth(), 2u);

  // Higher fee: displaces the lowest-ranked resident — the NEWER of the two
  // equal-fee entries (FIFO protects the older one).
  auto richer = transfer(7, 8, 11);
  const auto admitted = pool.offer(richer, kSecond, 1);
  EXPECT_EQ(admitted.result, AdmitResult::kAdmitted);
  ASSERT_TRUE(admitted.evicted);
  EXPECT_EQ(admitted.evicted->hash, b->hash);
  EXPECT_EQ(pool.stats().evicted, 1u);
  EXPECT_EQ(pool.depth(), 2u);
}

TEST(Mempool, TtlZeroIsDeadOnArrival) {
  Mempool pool(MempoolConfig{.capacity = 4, .ttl = 100 * kSecond});
  const auto out = pool.offer(transfer(1, 2, 10), 5 * kSecond, 0, SimTime{0});
  EXPECT_EQ(out.result, AdmitResult::kRejectedExpired);
  EXPECT_EQ(pool.depth(), 0u);
  EXPECT_EQ(pool.stats().rejected_expired, 1u);
}

TEST(Mempool, ExpireShedsByDeadline) {
  Mempool pool(MempoolConfig{.capacity = 4, .ttl = 10 * kSecond});
  auto early = transfer(1, 2, 10), late = transfer(3, 4, 10);
  pool.offer(early, 0, 0);
  pool.offer(late, 5 * kSecond, 0);
  const auto shed = pool.expire(10 * kSecond);  // deadline 10s ≤ now, 15s not
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0]->hash, early->hash);
  EXPECT_EQ(pool.depth(), 1u);
  EXPECT_EQ(pool.stats().expired, 1u);
  // An expired entry never reaches dispatch.
  EXPECT_EQ(pool.pop_best(10 * kSecond)->tx->hash, late->hash);
}

TEST(Mempool, DuplicateAndZeroCapacityReasonCodes) {
  Mempool pool(MempoolConfig{.capacity = 4, .ttl = 100 * kSecond});
  auto tx = transfer(1, 2, 10);
  EXPECT_EQ(pool.offer(tx, 0, 0).result, AdmitResult::kAdmitted);
  EXPECT_EQ(pool.offer(tx, 0, 0).result, AdmitResult::kRejectedDuplicate);

  Mempool empty(MempoolConfig{.capacity = 0, .ttl = 100 * kSecond});
  EXPECT_EQ(empty.offer(transfer(3, 4, 99), 0, 0).result, AdmitResult::kRejectedFull);

  EXPECT_STREQ(admit_result_name(AdmitResult::kAdmitted), "admitted");
  EXPECT_STREQ(admit_result_name(AdmitResult::kRejectedFull), "rejected_full");
  EXPECT_STREQ(admit_result_name(AdmitResult::kRejectedDuplicate), "rejected_duplicate");
  EXPECT_STREQ(admit_result_name(AdmitResult::kRejectedExpired), "rejected_expired");
}

TEST(Mempool, StatsConserveEntries) {
  Mempool pool(MempoolConfig{.capacity = 3, .ttl = 10 * kSecond, .aging_fee_per_second = 1});
  for (std::uint64_t i = 0; i < 8; ++i)
    pool.offer(transfer(i, i + 100, 10 + i), static_cast<SimTime>(i) * kSecond, 0);
  pool.expire(12 * kSecond);
  pool.pop_best(12 * kSecond);
  const MempoolStats& s = pool.stats();
  EXPECT_EQ(s.admitted, s.dispatched + s.evicted + s.expired + pool.depth());
  EXPECT_LE(s.peak_depth, pool.capacity());
}

// ---------------------------------------------------------------------------
// IngressSet

IngressConfig small_ingress(std::size_t capacity = 8) {
  IngressConfig ic;
  ic.num_shards = 4;
  ic.pool.capacity = capacity;
  ic.pool.ttl = 100 * kSecond;
  ic.soft_watermark = 0.5;
  ic.hard_watermark = 0.875;
  return ic;
}

TEST(Ingress, RoutesBySenderAccountShard) {
  IngressSet ingress(small_ingress(32));  // room even if routing skews
  for (std::uint64_t a = 0; a < 32; ++a) {
    auto tx = transfer(a, a + 1000, 10);
    const ShardId expect = ledger::shard_of_account(tx->sender, 4);
    ASSERT_EQ(ingress.offer(tx, 0, 0).result, AdmitResult::kAdmitted);
    EXPECT_TRUE(ingress.pool(expect).contains(tx->hash));
  }
  EXPECT_EQ(ingress.resident(), 32u);
}

TEST(Ingress, BackpressureWatermarks) {
  IngressSet ingress(small_ingress(8));  // soft at 4, shed at 7
  // Find accounts landing on shard 0 and fill it.
  std::uint64_t filled = 0;
  for (std::uint64_t a = 0; a < 4096 && filled < 7; ++a) {
    if (ledger::shard_of_account(AccountId{a}, 4).value != 0) continue;
    if (filled == 3) {
      EXPECT_EQ(ingress.backpressure(ShardId{0}), Backpressure::kNone);
    }
    if (filled == 4) {
      EXPECT_EQ(ingress.backpressure(ShardId{0}), Backpressure::kSoft);
    }
    ASSERT_EQ(ingress.offer(transfer(a, a + 9000, 10), 0, 0).result, AdmitResult::kAdmitted);
    ++filled;
  }
  ASSERT_EQ(filled, 7u);
  EXPECT_EQ(ingress.backpressure(ShardId{0}), Backpressure::kShed);
  EXPECT_EQ(ingress.worst_backpressure(), Backpressure::kShed);
  // Other shards are empty and unaffected.
  EXPECT_EQ(ingress.backpressure(ShardId{1}), Backpressure::kNone);
}

TEST(Ingress, DispatchHonorsCreditsAndSkipsExpired) {
  IngressSet ingress(small_ingress());
  std::vector<core::TxPtr> txs;
  for (std::uint64_t a = 0; a < 12; ++a) {
    auto tx = transfer(a, a + 500, 10 + a);
    ingress.offer(tx, 0, 0);
    txs.push_back(tx);
  }
  std::vector<core::TxPtr> sent;
  EXPECT_EQ(ingress.dispatch(kSecond, 5, [&](core::TxPtr t) { sent.push_back(t); }), 5u);
  EXPECT_EQ(sent.size(), 5u);
  EXPECT_EQ(ingress.resident(), 7u);
  // Past every deadline: dispatch sheds the rest, submits nothing.
  EXPECT_EQ(ingress.dispatch(200 * kSecond, 10, [&](core::TxPtr t) { sent.push_back(t); }),
            0u);
  EXPECT_EQ(sent.size(), 5u);
  EXPECT_EQ(ingress.resident(), 0u);
  EXPECT_EQ(ingress.stats().totals.expired, 7u);
}

TEST(Ingress, AdmissionDigestIsPureFunctionOfEventSequence) {
  // Same op sequence → same digest; any divergence (here: swapped order)
  // changes it.  This is the witness the cross-worker determinism suite
  // compares, so its sensitivity matters as much as its stability.
  const auto replay = [](bool swap_two) {
    IngressSet ingress(small_ingress(4));
    Rng rng(42);
    std::vector<core::TxPtr> txs;
    for (std::uint64_t i = 0; i < 40; ++i)
      txs.push_back(transfer(rng.uniform(300), 1000 + rng.uniform(300),
                             5 + rng.uniform(40), 1 + rng.uniform(9)));
    if (swap_two) std::swap(txs[10], txs[11]);
    SimTime now = 0;
    for (std::size_t i = 0; i < txs.size(); ++i) {
      now += static_cast<SimTime>(100 + rng.uniform(400)) * kMillisecond;
      ingress.offer(txs[i], now, static_cast<std::uint8_t>(i % 3));
      if (i % 5 == 4) ingress.dispatch(now, 2, [](core::TxPtr) {});
      if (i % 11 == 10) ingress.expire(now + 30 * kSecond);
    }
    return ingress.admission_digest();
  };
  EXPECT_EQ(replay(false), replay(false));
  EXPECT_NE(replay(false), replay(true));
}

TEST(Ingress, StatsAggregateAndConserve) {
  IngressSet ingress(small_ingress(4));
  Rng rng(7);
  for (std::uint64_t i = 0; i < 120; ++i)
    ingress.offer(transfer(rng.uniform(500), 1000 + rng.uniform(500), 5 + rng.uniform(60)),
                  static_cast<SimTime>(i) * 100 * kMillisecond, 0);
  ingress.dispatch(15 * kSecond, 6, [](core::TxPtr) {});
  const IngressStats s = ingress.stats();
  EXPECT_EQ(s.totals.admitted,
            s.totals.dispatched + s.totals.evicted + s.totals.expired + s.resident);
  EXPECT_LE(s.peak_resident, 16u);  // 4 shards × capacity 4
  EXPECT_GT(s.totals.rejected_total() + s.totals.evicted, 0u)  // pool really overflowed
      << "test parameters never exercised the full-pool path";
}

}  // namespace
}  // namespace jenga::mempool

// ---------------------------------------------------------------------------
// 2PC stuck watchdog

namespace jenga::security {
namespace {

TEST(TwoPcWatchdog, PartitionedTransferIsFlaggedStuck) {
  core::JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;
  cfg.seed = 11;
  cfg.twopc_stuck_timeout = 10 * kSecond;
  cfg.pending_timeout = 600 * kSecond;  // keep the gather path out of the way

  workload::TraceConfig tc;
  tc.num_accounts = 400;
  workload::TraceGenerator gen(tc, Rng(3));
  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  FaultInjector injector(sim, net, system);
  const std::uint64_t initial_balance = system.total_account_balance();
  system.start();

  // Split the two shards from each other for the rest of the run: intra-shard
  // consensus keeps deciding (client submits are reliable), but every
  // cross-shard 2PC prepare is partition-blocked after its debit committed.
  PartitionWindow window;
  window.start = 2 * kSecond;
  window.end = 600 * kSecond;
  window.isolated = system.lattice().shard_members(ShardId{1});
  FaultPlan plan;
  plan.partitions.push_back(window);
  injector.arm(plan);

  // A steady trickle keeps shard consensus proposing (the watchdog scan rides
  // on proposals) and guarantees cross-shard transfers after the split.
  for (int i = 0; i < 80; ++i) {
    sim.run_until(sim.now() + 500 * kMillisecond);
    system.submit(
        std::make_shared<ledger::Transaction>(gen.transfer_tx(sim.now())));
  }
  sim.run_until(120 * kSecond);

  ASSERT_GT(system.twopc_inflight(), 0u) << "no cross-shard transfer got wedged";
  EXPECT_GT(system.twopc_stuck_now(), 0u);
  EXPECT_GT(system.twopc_stuck_total(), 0u);

  const InvariantReport report = check_invariants(system, initial_balance);
  EXPECT_GT(report.twopc_stuck, 0u);
  EXPECT_FALSE(report.ok()) << report.describe();
  EXPECT_NE(report.describe().find("twopc_stuck"), std::string::npos);
}

TEST(TwoPcWatchdog, CleanRunFlagsNothing) {
  core::JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;
  cfg.seed = 12;
  cfg.twopc_stuck_timeout = 10 * kSecond;

  workload::TraceConfig tc;
  tc.num_accounts = 400;
  workload::TraceGenerator gen(tc, Rng(4));
  sim::Simulator sim;
  sim::Network net(sim, sim::NetConfig{}, Rng(cfg.seed));
  core::JengaSystem system(sim, net, cfg, harness::make_genesis(gen));
  const std::uint64_t initial_balance = system.total_account_balance();
  system.start();
  for (int i = 0; i < 40; ++i) {
    sim.run_until(sim.now() + 500 * kMillisecond);
    system.submit(
        std::make_shared<ledger::Transaction>(gen.transfer_tx(sim.now())));
  }
  sim.run_until(200 * kSecond);

  EXPECT_EQ(system.twopc_inflight(), 0u);
  EXPECT_EQ(system.twopc_stuck_total(), 0u);
  const InvariantReport report = check_invariants(system, initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
}

}  // namespace
}  // namespace jenga::security

// ---------------------------------------------------------------------------
// Open-loop harness runs: determinism across exec worker counts, overload
// behaviour, scripted bursts, terminal accounting.

namespace jenga::harness {
namespace {

RunConfig open_loop_run(SystemKind kind, std::uint32_t workers) {
  RunConfig cfg;
  cfg.kind = kind;
  cfg.num_shards = 4;
  cfg.nodes_per_shard = 8;
  cfg.contract_txs = 120;
  cfg.transfer_txs = 40;
  cfg.max_sim_time = 900 * kSecond;
  cfg.exec_workers = workers;
  cfg.trace.num_contracts = 1000;
  cfg.trace.num_accounts = 2000;
  cfg.trace.max_steps = 12;
  cfg.trace.max_contracts_per_tx = 6;
  cfg.arrival.mode = workload::ArrivalMode::kPoisson;
  cfg.arrival.rate_tps = 40.0;
  cfg.mempool.capacity = 64;
  cfg.mempool.ttl = 120 * kSecond;
  cfg.max_inflight = 128;
  return cfg;
}

class OpenLoopDeterminism : public ::testing::TestWithParam<SystemKind> {};

TEST_P(OpenLoopDeterminism, IdenticalAcrossExecWorkerCounts) {
  const RunResult serial = run_experiment(open_loop_run(GetParam(), 1));
  const RunResult parallel = run_experiment(open_loop_run(GetParam(), 4));
  ASSERT_TRUE(serial.ingress.enabled);
  EXPECT_EQ(serial.ledger_digest, parallel.ledger_digest);
  EXPECT_EQ(serial.ingress.admission_digest, parallel.ingress.admission_digest);
  EXPECT_EQ(serial.stats.submitted, parallel.stats.submitted);
  EXPECT_EQ(serial.stats.committed, parallel.stats.committed);
  EXPECT_EQ(serial.stats.aborted, parallel.stats.aborted);
  EXPECT_EQ(serial.stats.rejected, parallel.stats.rejected);
  EXPECT_EQ(serial.stats.expired, parallel.stats.expired);
  EXPECT_EQ(serial.ingress.client.generated, parallel.ingress.client.generated);
  EXPECT_EQ(serial.ingress.client.retries, parallel.ingress.client.retries);
  EXPECT_EQ(serial.ingress.pools.totals.admitted, parallel.ingress.pools.totals.admitted);
}

INSTANTIATE_TEST_SUITE_P(Systems, OpenLoopDeterminism,
                         ::testing::Values(SystemKind::kJenga, SystemKind::kCxFunc,
                                           SystemKind::kSingleShard, SystemKind::kPyramid),
                         [](const auto& info) {
                           switch (info.param) {
                             case SystemKind::kJenga: return "Jenga";
                             case SystemKind::kCxFunc: return "CxFunc";
                             case SystemKind::kSingleShard: return "SingleShard";
                             case SystemKind::kPyramid: return "Pyramid";
                             default: return "?";
                           }
                         });

TEST(OpenLoop, EveryGeneratedTxReachesOneTerminalState) {
  const RunResult r = run_experiment(open_loop_run(SystemKind::kJenga, 1));
  ASSERT_TRUE(r.ingress.enabled);
  const workload::ClientStats& cs = r.ingress.client;
  EXPECT_EQ(cs.generated, 160u);
  // generated = dispatched-into-system + terminal at the admission layer.
  EXPECT_EQ(cs.generated, r.stats.submitted + r.stats.rejected + r.stats.expired);
  EXPECT_EQ(r.stats.committed + r.stats.aborted, r.stats.submitted);
  // Underloaded: nothing should have been refused.
  EXPECT_EQ(r.stats.rejected, 0u);
  EXPECT_EQ(r.stats.expired, 0u);
  ASSERT_TRUE(r.ingress.invariants_audited);
  EXPECT_TRUE(r.ingress.invariants.ok()) << r.ingress.invariants.describe();
}

TEST(OpenLoop, OverloadDegradesGracefullyAndStaysBounded) {
  RunConfig cfg = open_loop_run(SystemKind::kJenga, 1);
  // Slam a tiny admission layer: bursty arrivals far above what the pools
  // hold, short TTL, few retries — rejections and expiries must show up,
  // bounded and reason-coded, with every invariant intact.
  cfg.arrival.mode = workload::ArrivalMode::kBursty;
  cfg.arrival.rate_tps = 400.0;
  cfg.arrival.burst_period = 5 * kSecond;
  cfg.arrival.burst_duration = 2 * kSecond;
  cfg.arrival.burst_multiplier = 4.0;
  cfg.mempool.capacity = 8;
  cfg.mempool.ttl = 15 * kSecond;
  cfg.retry.max_attempts = 3;
  cfg.max_inflight = 32;
  const RunResult r = run_experiment(cfg);
  ASSERT_TRUE(r.ingress.enabled);
  const workload::ClientStats& cs = r.ingress.client;
  EXPECT_EQ(cs.generated, 160u);
  EXPECT_EQ(cs.generated, r.stats.submitted + r.stats.rejected + r.stats.expired);
  EXPECT_GT(r.stats.rejected + r.stats.expired, 0u) << "overload never bit";
  EXPECT_GT(r.ingress.pools.totals.rejected_total() + r.ingress.pools.totals.evicted, 0u);
  EXPECT_LE(r.ingress.pools.peak_resident, 4u * 8u);  // bounded by capacity
  EXPECT_GT(r.stats.committed, 0u) << "goodput collapsed to zero";
  ASSERT_TRUE(r.ingress.invariants_audited);
  EXPECT_TRUE(r.ingress.invariants.ok()) << r.ingress.invariants.describe();
  // No lock leaked by anything the admission layer shed.
  EXPECT_EQ(r.ingress.invariants.leaked_locks, 0u);
  EXPECT_EQ(r.ingress.invariants.twopc_stuck, 0u);
}

TEST(OpenLoop, ScriptedOverloadBurstRaisesPressure) {
  RunConfig calm = open_loop_run(SystemKind::kJenga, 1);
  calm.arrival.rate_tps = 20.0;
  calm.mempool.capacity = 16;
  RunConfig bursty = calm;
  bursty.faults_plan.overload.push_back(
      security::OverloadBurst{.at = kSecond, .duration = 6 * kSecond, .rate_multiplier = 10.0});
  const RunResult a = run_experiment(calm);
  const RunResult b = run_experiment(bursty);
  ASSERT_TRUE(b.ingress.enabled);
  // The burst compresses arrivals into a shorter window: pools fill deeper.
  EXPECT_GE(b.ingress.pools.peak_resident, a.ingress.pools.peak_resident);
  // Both runs still drain cleanly through admission control.
  EXPECT_TRUE(a.ingress.invariants.ok()) << a.ingress.invariants.describe();
  EXPECT_TRUE(b.ingress.invariants.ok()) << b.ingress.invariants.describe();
  EXPECT_EQ(b.ingress.client.generated,
            b.stats.submitted + b.stats.rejected + b.stats.expired);
}

TEST(OpenLoop, SameSeedSameAdmissionSequence) {
  const RunResult a = run_experiment(open_loop_run(SystemKind::kJenga, 1));
  const RunResult b = run_experiment(open_loop_run(SystemKind::kJenga, 1));
  EXPECT_EQ(a.ingress.admission_digest, b.ingress.admission_digest);
  EXPECT_EQ(a.ledger_digest, b.ledger_digest);
  RunConfig other = open_loop_run(SystemKind::kJenga, 1);
  other.seed = 99;
  const RunResult c = run_experiment(other);
  EXPECT_NE(a.ingress.admission_digest, c.ingress.admission_digest);
}

TEST(OpenLoop, MempoolTelemetrySurfaces) {
  const RunResult r = run_experiment(open_loop_run(SystemKind::kJenga, 1));
  ASSERT_TRUE(r.telemetry);
  const auto& reg = r.telemetry->registry;
  const auto* admitted = reg.find_counter("mempool.admitted");
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(admitted->value(), r.ingress.pools.totals.admitted);
  const auto* dispatched = reg.find_counter("mempool.dispatched");
  ASSERT_NE(dispatched, nullptr);
  EXPECT_EQ(dispatched->value(), r.stats.submitted);
  // Fee-tier wait histograms exist for every tier that dispatched something.
  std::uint64_t waits = 0;
  for (int t = 0; t < 3; ++t) {
    if (const auto* h = reg.find_histogram("mempool.wait_us.tier" + std::to_string(t)))
      waits += h->count();
  }
  EXPECT_EQ(waits, r.stats.submitted);
}

TEST(OpenLoop, LegacyModesUnaffected) {
  // arrival.mode == kNone must leave the pre-mempool paths bit-identical:
  // no ingress report, no rejected/expired counts.
  RunConfig cfg;
  cfg.kind = SystemKind::kJenga;
  cfg.num_shards = 4;
  cfg.nodes_per_shard = 8;
  cfg.contract_txs = 60;
  cfg.trace.num_contracts = 500;
  cfg.trace.num_accounts = 1000;
  const RunResult r = run_experiment(cfg);
  EXPECT_FALSE(r.ingress.enabled);
  EXPECT_EQ(r.stats.rejected, 0u);
  EXPECT_EQ(r.stats.expired, 0u);
  EXPECT_EQ(r.stats.committed + r.stats.aborted, 60u);
}

}  // namespace
}  // namespace jenga::harness
