// Chaos harness: scripted fault plans (FaultInjector) driving the full Jenga
// system through adversarial schedules, with the post-run invariant audit as
// the safety verdict.  The headline scenario is the acceptance bar from the
// fault-injection issue: 10% message drop, a 20-second partition window, and
// floor(k/3)-1 Byzantine nodes per shard, after which >= 90% of transactions
// must have committed and every invariant must hold.
#include <gtest/gtest.h>

#include <memory>

#include "core/jenga_system.hpp"
#include "harness/genesis.hpp"
#include "security/fault_injector.hpp"
#include "workload/trace.hpp"

namespace jenga::security {
namespace {

using core::JengaConfig;
using core::JengaSystem;

struct ChaosFixture {
  explicit ChaosFixture(JengaConfig cfg, std::uint64_t workload_seed = 7) {
    workload::TraceConfig tc;
    tc.num_contracts = 150;
    tc.num_accounts = 200;
    tc.max_contracts_per_tx = 4;
    tc.max_steps = 8;
    gen = std::make_unique<workload::TraceGenerator>(tc, Rng(workload_seed));
    net = std::make_unique<sim::Network>(sim, sim::NetConfig{}, Rng(cfg.seed));
    system = std::make_unique<JengaSystem>(sim, *net, cfg, harness::make_genesis(*gen));
    injector = std::make_unique<FaultInjector>(sim, *net, *system);
    initial_balance = system->total_account_balance();
    system->start();
  }

  void submit_workload(int n, SimTime spacing) {
    for (int i = 0; i < n; ++i) {
      sim.run_until(sim.now() + spacing);
      auto tx = std::make_shared<ledger::Transaction>(gen->contract_tx(1'000'000, sim.now()));
      system->submit(tx);
    }
  }

  sim::Simulator sim;
  std::unique_ptr<workload::TraceGenerator> gen;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<JengaSystem> system;
  std::unique_ptr<FaultInjector> injector;
  std::uint64_t initial_balance = 0;
};

JengaConfig chaos_config() {
  JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;  // 16 nodes, quorum 5 of 8 per group
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 300 * kSecond;
  return cfg;
}

TEST(InvariantReport, VerdictAndDescription) {
  InvariantReport ok_report;
  ok_report.expected_balance = 1000;
  ok_report.actual_balance = 1000;
  EXPECT_TRUE(ok_report.ok());
  EXPECT_NE(ok_report.describe().find("(ok)"), std::string::npos);
  EXPECT_EQ(ok_report.describe().find("VIOLATION"), std::string::npos);

  InvariantReport bad = ok_report;
  bad.leaked_locks = 3;
  bad.actual_balance = 999;
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.balance_conserved());
  EXPECT_NE(bad.describe().find("VIOLATION"), std::string::npos);
}

TEST(Chaos, CleanRunPassesInvariantAudit) {
  ChaosFixture f(chaos_config());
  EXPECT_EQ(f.injector->events_armed(), 0u);
  f.submit_workload(10, kSecond);
  f.sim.run_until(300 * kSecond);
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(f.system->stats().committed + f.system->stats().aborted, 10u);
}

TEST(Chaos, AcceptanceScenarioNinetyPercentCommitUnderFaults) {
  JengaConfig cfg = chaos_config();
  ChaosFixture f(cfg);
  const auto& lat = f.system->lattice();
  const auto shard0 = lat.shard_members(ShardId{0});
  const auto shard1 = lat.shard_members(ShardId{1});

  FaultPlan plan;
  // 10% drop on every node-to-node link from the start of the run.
  sim::LinkFaults lossy;
  lossy.drop_rate = 0.10;
  plan.ramps.push_back({0, lossy});
  // floor(k/3)-1 = 1 Byzantine node per shard: an equivocating proposer in
  // shard 0 and a silent node in shard 1.
  plan.byzantine.push_back({shard0[1], consensus::ByzantineMode::kEquivocator});
  plan.byzantine.push_back({shard1[1], consensus::ByzantineMode::kSilent});
  // One 20-second partition window isolating a node from each shard (they
  // can reach each other but not the remaining 14 nodes).
  plan.partitions.push_back({30 * kSecond, 50 * kSecond, {shard0[2], shard1[2]}, 1});
  f.injector->arm(plan);
  EXPECT_EQ(f.injector->events_armed(), plan.event_count());

  f.submit_workload(30, kSecond);
  f.sim.run_until(600 * kSecond);


  const auto& st = f.system->stats();
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(st.committed + st.aborted, 30u) << "limbo txs: " << f.system->in_flight();
  EXPECT_GE(st.committed, 27u) << "committed=" << st.committed << " aborted=" << st.aborted;
  // The faults actually fired: drops happened and both partitioned nodes
  // were cut off for the window.
  EXPECT_GT(f.net->fault_stats().dropped, 0u);
  EXPECT_GT(f.net->fault_stats().partition_blocked, 0u);
}

TEST(Chaos, CrashRecoverySyncsAndCommits) {
  JengaConfig cfg = chaos_config();
  ChaosFixture f(cfg);
  const NodeId victim = f.system->lattice().shard_members(ShardId{0})[3];

  FaultPlan plan;
  plan.crashes.push_back({victim, 5 * kSecond, 60 * kSecond});
  f.injector->arm(plan);

  f.submit_workload(10, kSecond);
  f.sim.run_until(300 * kSecond);
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(f.system->stats().committed + f.system->stats().aborted, 10u);
  // Recovery used the state-sync path, not a silent resume.
  EXPECT_GT(f.system->shard_replica(victim).stats().sync_heights_applied, 0u);
}

TEST(Chaos, LeaderAssassinationRecoversViaViewChange) {
  JengaConfig cfg = chaos_config();
  ChaosFixture f(cfg);

  FaultPlan plan;
  // Kill whichever node leads shard 0 two seconds in; it stays down.
  plan.assassinations.push_back({ShardId{0}, 2 * kSecond, 0});
  f.injector->arm(plan);

  f.submit_workload(10, kSecond);
  f.sim.run_until(300 * kSecond);
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(f.system->stats().committed + f.system->stats().aborted, 10u);
}

TEST(Chaos, StorageFaultsWithProofVerifiedRecovery) {
  // Durable per-shard state under a hostile disk AND hostile peers: fsyncs
  // silently dropped, a latent bit flip in the WAL, a torn write — then
  // crashed nodes come back, refuse their corrupt durable image, and re-sync
  // over Merkle proofs.  The first peer each recovering node asks is
  // Byzantine, so tampered snapshots must be rejected before an honest peer
  // completes the sync.
  JengaConfig cfg = chaos_config();
  cfg.storage_backend = core::StorageBackendKind::kDurable;
  cfg.storage_snapshot_interval = 8;
  cfg.model_state_sync = true;
  ChaosFixture f(cfg);
  const auto shard0 = f.system->lattice().shard_members(ShardId{0});
  const auto shard1 = f.system->lattice().shard_members(ShardId{1});

  FaultPlan plan;
  // Member [0] serves state sync first (member order), so a Byzantine [0]
  // guarantees the proof-rejection path is exercised.
  plan.byzantine.push_back({shard0[0], consensus::ByzantineMode::kSilent});
  plan.byzantine.push_back({shard1[0], consensus::ByzantineMode::kSilent});
  plan.crashes.push_back({shard0[3], 10 * kSecond, 60 * kSecond});
  plan.crashes.push_back({shard1[4], 15 * kSecond, 80 * kSecond});
  // Shard 0's drive: stops persisting at 25s (until 70s) and picks up a
  // latent flip at 40s — so the image read at the 60s recovery is both stale
  // and corrupt.  Shard 1's drive tears a WAL append mid-record at 20s.
  plan.storage.push_back(
      {ShardId{0}, 25 * kSecond, StorageFaultKind::kDroppedFsync, 0, 45 * kSecond});
  plan.storage.push_back({ShardId{0}, 40 * kSecond, StorageFaultKind::kBitFlip, 0xBADC0DE, 0});
  plan.storage.push_back({ShardId{1}, 20 * kSecond, StorageFaultKind::kTornWrite, 7, 0});
  f.injector->arm(plan);
  EXPECT_EQ(f.injector->events_armed(), plan.event_count());

  f.submit_workload(30, kSecond);
  f.sim.run_until(600 * kSecond);

  const auto& st = f.system->stats();
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(st.committed + st.aborted, 30u) << "limbo txs: " << f.system->in_flight();

  // The storage faults actually hit the disks...
  ASSERT_NE(f.system->storage_env(ShardId{0}), nullptr);
  EXPECT_GE(f.system->storage_env(ShardId{0})->fault_stats().dropped_fsyncs, 1u);
  EXPECT_EQ(f.system->storage_env(ShardId{0})->fault_stats().bit_flips, 1u);
  EXPECT_EQ(f.system->storage_env(ShardId{1})->fault_stats().torn_writes, 1u);
  // ...both recoveries ran the sync path, the Byzantine first responders'
  // tampered snapshots were rejected, and every node still landed on its
  // group's root (root_mismatches == 0 is part of report.ok()).
  const auto& sync = f.system->state_sync_stats();
  EXPECT_GE(sync.syncs, 2u);
  EXPECT_GE(sync.proof_rejections, 1u);
  EXPECT_GT(sync.keys_verified, 0u);
}

TEST(Chaos, SameFaultPlanAndSeedIsDeterministic) {
  TxStats runs[2];
  sim::TrafficStats traffic[2];
  sim::FaultStats faults[2];
  for (int round = 0; round < 2; ++round) {
    JengaConfig cfg = chaos_config();
    ChaosFixture f(cfg);
    const auto shard0 = f.system->lattice().shard_members(ShardId{0});
    const auto shard1 = f.system->lattice().shard_members(ShardId{1});

    FaultPlan plan;
    sim::LinkFaults lossy;
    lossy.drop_rate = 0.15;
    lossy.duplicate_rate = 0.05;
    lossy.extra_delay_max = 40 * kMillisecond;
    plan.ramps.push_back({0, lossy});
    plan.byzantine.push_back({shard1[1], consensus::ByzantineMode::kSilent});
    plan.partitions.push_back({20 * kSecond, 35 * kSecond, {shard0[2]}, 1});
    plan.crashes.push_back({shard0[3], 10 * kSecond, 40 * kSecond});
    f.injector->arm(plan);

    f.submit_workload(12, kSecond);
    f.sim.run_until(400 * kSecond);
    runs[round] = f.system->stats();
    traffic[round] = f.net->stats();
    faults[round] = f.net->fault_stats();
  }
  EXPECT_EQ(runs[0].committed, runs[1].committed);
  EXPECT_EQ(runs[0].aborted, runs[1].aborted);
  EXPECT_EQ(runs[0].fees_charged, runs[1].fees_charged);
  EXPECT_EQ(runs[0].total_commit_latency, runs[1].total_commit_latency);
  EXPECT_EQ(runs[0].last_commit_time, runs[1].last_commit_time);
  EXPECT_EQ(runs[0].commit_latencies, runs[1].commit_latencies);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(traffic[0].messages[c], traffic[1].messages[c]);
    EXPECT_EQ(traffic[0].bytes[c], traffic[1].bytes[c]);
  }
  EXPECT_EQ(faults[0].dropped, faults[1].dropped);
  EXPECT_EQ(faults[0].duplicated, faults[1].duplicated);
  EXPECT_EQ(faults[0].partition_blocked, faults[1].partition_blocked);
  EXPECT_EQ(faults[0].down_blocked, faults[1].down_blocked);
}

}  // namespace
}  // namespace jenga::security
