// Merkle tree roots and inclusion proofs.
#include <gtest/gtest.h>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace jenga::crypto {
namespace {

std::vector<Hash256> make_leaves(std::size_t n) {
  std::vector<Hash256> leaves;
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(sha256("leaf-" + std::to_string(i)));
  return leaves;
}

TEST(Merkle, EmptyTreeHasFixedRoot) {
  EXPECT_EQ(merkle_root({}), merkle_root({}));
  EXPECT_NE(merkle_root({}), merkle_root(make_leaves(1)));
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  const auto leaves = make_leaves(1);
  EXPECT_EQ(merkle_root(leaves), merkle_leaf_hash(leaves[0]));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Hash256 base = merkle_root(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i].bytes[0] ^= 1;
    EXPECT_NE(merkle_root(mutated), base) << "leaf " << i;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  auto swapped = leaves;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(merkle_root(leaves), merkle_root(swapped));
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllLeavesProvable) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const Hash256 root = merkle_root(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = merkle_prove(leaves, i);
    EXPECT_TRUE(merkle_verify(root, leaves[i], proof)) << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleProofTest, WrongLeafFailsProof) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const Hash256 root = merkle_root(leaves);
  const auto proof = merkle_prove(leaves, 0);
  Hash256 wrong = leaves[0];
  wrong.bytes[5] ^= 0x10;
  EXPECT_FALSE(merkle_verify(root, wrong, proof));
}

// Odd sizes exercise the duplicate-last-node path.
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100));

TEST(Merkle, TamperedProofRejected) {
  const auto leaves = make_leaves(16);
  const Hash256 root = merkle_root(leaves);
  auto proof = merkle_prove(leaves, 5);
  proof[1].sibling.bytes[0] ^= 0xFF;
  EXPECT_FALSE(merkle_verify(root, leaves[5], proof));
}

TEST(Merkle, ProofAgainstWrongRootRejected) {
  const auto leaves = make_leaves(8);
  const auto other = make_leaves(9);
  const auto proof = merkle_prove(leaves, 2);
  EXPECT_FALSE(merkle_verify(merkle_root(other), leaves[2], proof));
}

TEST(Merkle, ProofLengthIsLogarithmic) {
  const auto leaves = make_leaves(16);
  EXPECT_EQ(merkle_prove(leaves, 0).size(), 4u);
  const auto leaves17 = make_leaves(17);
  EXPECT_EQ(merkle_prove(leaves17, 0).size(), 5u);
}

TEST(Merkle, LeafInteriorDomainSeparation) {
  // A forged "leaf" equal to an interior node's preimage must not verify at
  // the wrong level; domain tags make leaf and node hashes distinct functions.
  const auto leaves = make_leaves(2);
  const Hash256 root = merkle_root(leaves);
  // Interior node value == root here; try to use it as a leaf of a 1-leaf tree.
  EXPECT_NE(merkle_leaf_hash(root), root);
}

}  // namespace
}  // namespace jenga::crypto
