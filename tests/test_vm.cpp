// Contract VM: opcode semantics, gas, declared-access enforcement,
// cross-contract calls, and the assembler.
#include <gtest/gtest.h>

#include <memory>

#include "ledger/portable_state.hpp"
#include "vm/assembler.hpp"
#include "vm/interpreter.hpp"

namespace jenga::vm {
namespace {

using ledger::PortableState;
using ledger::PortableStateView;

ContractLogic make_contract(ContractId id, std::initializer_list<std::string_view> sources) {
  ContractLogic logic;
  logic.id = id;
  for (auto src : sources) {
    auto code = assemble(src);
    EXPECT_TRUE(code.ok()) << (code.ok() ? "" : code.error());
    logic.functions.push_back({"fn", code.value()});
  }
  return logic;
}

PortableState state_with(ContractId c, std::initializer_list<std::pair<std::uint64_t, std::uint64_t>> kv,
                         std::initializer_list<std::pair<AccountId, std::uint64_t>> accounts = {}) {
  PortableState st;
  auto& m = st.contracts[c];
  for (auto [k, v] : kv) m[k] = v;
  for (auto [a, b] : accounts) st.balances[a] = b;
  return st;
}

class VmTest : public ::testing::Test {
 protected:
  ExecResult run_one(const ContractLogic& logic, PortableStateView& view,
                     std::vector<std::uint64_t> args = {}, ExecLimits limits = {}) {
    const ContractLogic* ptr = &logic;
    Interpreter interp(std::span(&ptr, 1), view, limits);
    CallStep step{0, 0, std::move(args)};
    return interp.run(AccountId{1}, std::span(&step, 1));
  }
};

TEST_F(VmTest, ArithmeticAndStore) {
  const auto logic = make_contract(ContractId{1}, {R"(
    PUSH 7      ; key
    PUSH 5
    PUSH 3
    ADD         ; 8
    SSTORE      ; state[7] = 8
    RETURN
  )"});
  PortableStateView view(state_with(ContractId{1}, {}));
  const auto r = run_one(logic, view);
  ASSERT_TRUE(r.ok()) << exec_status_name(r.status);
  EXPECT_EQ(view.state().contracts.at(ContractId{1}).at(7), 8u);
}

TEST_F(VmTest, LoadAbsentKeyReadsZero) {
  const auto logic = make_contract(ContractId{1}, {R"(
    PUSH 0      ; result key
    PUSH 99
    SLOAD       ; 0 (absent)
    PUSH 1
    ADD
    SSTORE
    RETURN
  )"});
  PortableStateView view(state_with(ContractId{1}, {}));
  ASSERT_TRUE(run_one(logic, view).ok());
  EXPECT_EQ(view.state().contracts.at(ContractId{1}).at(0), 1u);
}

TEST_F(VmTest, LoopComputesSum) {
  // sum 1..10 into state[0] using a counter in state[1].
  const auto logic = make_contract(ContractId{2}, {R"(
    PUSH 1
    PUSH 10
    SSTORE        ; state[1] = 10 (counter)
  loop:
    PUSH 1
    SLOAD         ; counter
    JZ done
    PUSH 0
    PUSH 0
    SLOAD         ; acc
    PUSH 1
    SLOAD
    ADD
    SSTORE        ; acc += counter
    PUSH 1
    PUSH 1
    SLOAD
    PUSH 1
    SUB
    SSTORE        ; counter -= 1
    JUMP loop
  done:
    RETURN
  )"});
  PortableStateView view(state_with(ContractId{2}, {}));
  const auto r = run_one(logic, view);
  ASSERT_TRUE(r.ok()) << exec_status_name(r.status);
  EXPECT_EQ(view.state().contracts.at(ContractId{2}).at(0), 55u);
}

TEST_F(VmTest, DivisionByZeroAborts) {
  const auto logic = make_contract(ContractId{1}, {"PUSH 4\nPUSH 0\nDIV\nRETURN"});
  PortableStateView view(state_with(ContractId{1}, {}));
  EXPECT_EQ(run_one(logic, view).status, ExecStatus::kDivisionByZero);
}

TEST_F(VmTest, StackUnderflowDetected) {
  const auto logic = make_contract(ContractId{1}, {"ADD\nRETURN"});
  PortableStateView view(state_with(ContractId{1}, {}));
  EXPECT_EQ(run_one(logic, view).status, ExecStatus::kStackUnderflow);
}

TEST_F(VmTest, StackOverflowDetected) {
  const auto logic = make_contract(ContractId{1}, {R"(
  loop:
    PUSH 1
    JUMP loop
  )"});
  PortableStateView view(state_with(ContractId{1}, {}));
  ExecLimits limits;
  limits.max_stack = 64;
  limits.gas_limit = 1'000'000;
  EXPECT_EQ(run_one(logic, view, {}, limits).status, ExecStatus::kStackOverflow);
}

TEST_F(VmTest, OutOfGasDetected) {
  const auto logic = make_contract(ContractId{1}, {R"(
  loop:
    PUSH 1
    POP
    JUMP loop
  )"});
  PortableStateView view(state_with(ContractId{1}, {}));
  ExecLimits limits;
  limits.gas_limit = 500;
  EXPECT_EQ(run_one(logic, view, {}, limits).status, ExecStatus::kOutOfGas);
}

TEST_F(VmTest, ExplicitAbort) {
  const auto logic = make_contract(ContractId{1}, {"ABORT"});
  PortableStateView view(state_with(ContractId{1}, {}));
  EXPECT_EQ(run_one(logic, view).status, ExecStatus::kExplicitAbort);
}

TEST_F(VmTest, UndeclaredContractAccessAborts) {
  // Contract 1 is declared (slot 0) but its bytecode touches contract state
  // via a view that doesn't include contract 1 -> undeclared access.
  const auto logic = make_contract(ContractId{1}, {"PUSH 0\nSLOAD\nPOP\nRETURN"});
  PortableState empty;  // no declared states at all
  PortableStateView view(std::move(empty));
  EXPECT_EQ(run_one(logic, view).status, ExecStatus::kUndeclaredAccess);
}

TEST_F(VmTest, UndeclaredAccountAborts) {
  const auto logic = make_contract(ContractId{1}, {R"(
    PUSH 42      ; account id
    BALANCE
    POP
    RETURN
  )"});
  PortableStateView view(state_with(ContractId{1}, {}));  // account 42 not declared
  EXPECT_EQ(run_one(logic, view).status, ExecStatus::kUndeclaredAccess);
}

TEST_F(VmTest, CreditDebitMoveFunds) {
  const auto logic = make_contract(ContractId{1}, {R"(
    PUSH 10     ; debit account 10 by 30
    PUSH 30
    DEBIT
    PUSH 11
    PUSH 30
    CREDIT
    RETURN
  )"});
  PortableStateView view(
      state_with(ContractId{1}, {}, {{AccountId{10}, 100}, {AccountId{11}, 5}}));
  ASSERT_TRUE(run_one(logic, view).ok());
  EXPECT_EQ(view.state().balances.at(AccountId{10}), 70u);
  EXPECT_EQ(view.state().balances.at(AccountId{11}), 35u);
}

TEST_F(VmTest, InsufficientFundsAborts) {
  const auto logic = make_contract(ContractId{1}, {"PUSH 10\nPUSH 101\nDEBIT\nRETURN"});
  PortableStateView view(state_with(ContractId{1}, {}, {{AccountId{10}, 100}}));
  EXPECT_EQ(run_one(logic, view).status, ExecStatus::kInsufficientFunds);
}

TEST_F(VmTest, ArgsAndCaller) {
  const auto logic = make_contract(ContractId{1}, {R"(
    PUSH 0
    PUSH 0
    ARG         ; args[0]
    SSTORE
    PUSH 1
    CALLER
    SSTORE
    RETURN
  )"});
  PortableStateView view(state_with(ContractId{1}, {}));
  ASSERT_TRUE(run_one(logic, view, {777}).ok());
  EXPECT_EQ(view.state().contracts.at(ContractId{1}).at(0), 777u);
  EXPECT_EQ(view.state().contracts.at(ContractId{1}).at(1), 1u);  // sender id
}

TEST_F(VmTest, CrossContractCall) {
  // Contract A (slot 0) calls contract B (slot 1), which writes B's state.
  auto a = make_contract(ContractId{1}, {R"(
    PUSH 5      ; argument to B
    CALL 1 0
    RETURN
  )"});
  auto b = make_contract(ContractId{2}, {R"(
    PUSH 0      ; key
    PUSH 0
    ARG         ; args[0] == 5
    PUSH 2
    MUL
    SSTORE      ; B.state[0] = 10
    RETURN
  )"});
  PortableState st;
  st.contracts[ContractId{1}] = {};
  st.contracts[ContractId{2}] = {};
  PortableStateView view(std::move(st));
  const ContractLogic* ptrs[2] = {&a, &b};
  Interpreter interp(std::span<const ContractLogic* const>(ptrs, 2), view);
  CallStep step{0, 0, {}};
  const auto r = interp.run(AccountId{1}, std::span(&step, 1));
  ASSERT_TRUE(r.ok()) << exec_status_name(r.status);
  EXPECT_EQ(view.state().contracts.at(ContractId{2}).at(0), 10u);
  EXPECT_EQ(r.contract_calls, 2u);
}

TEST_F(VmTest, CallToMissingLogicFails) {
  auto a = make_contract(ContractId{1}, {"CALL 1 0\nRETURN"});
  PortableStateView view(state_with(ContractId{1}, {}));
  const ContractLogic* ptrs[2] = {&a, nullptr};
  Interpreter interp(std::span<const ContractLogic* const>(ptrs, 2), view);
  CallStep step{0, 0, {}};
  EXPECT_EQ(interp.run(AccountId{1}, std::span(&step, 1)).status, ExecStatus::kBadCall);
}

TEST_F(VmTest, CallDepthLimited) {
  auto a = make_contract(ContractId{1}, {"CALL 0 0\nRETURN"});  // self-recursion
  PortableStateView view(state_with(ContractId{1}, {}));
  const ContractLogic* ptr = &a;
  ExecLimits limits;
  limits.max_call_depth = 8;
  Interpreter interp(std::span(&ptr, 1), view, limits);
  CallStep step{0, 0, {}};
  EXPECT_EQ(interp.run(AccountId{1}, std::span(&step, 1)).status,
            ExecStatus::kCallDepthExceeded);
}

TEST_F(VmTest, MultiStepChainRunsAllSteps) {
  const auto logic = make_contract(ContractId{1}, {R"(
    PUSH 0
    PUSH 0
    SLOAD
    PUSH 1
    ADD
    SSTORE
    RETURN
  )"});
  PortableStateView view(state_with(ContractId{1}, {}));
  const ContractLogic* ptr = &logic;
  Interpreter interp(std::span(&ptr, 1), view);
  std::vector<CallStep> steps(5, CallStep{0, 0, {}});
  const auto r = interp.run(AccountId{1}, steps);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(view.state().contracts.at(ContractId{1}).at(0), 5u);
}

TEST_F(VmTest, FailedStepStopsChain) {
  auto ok = make_contract(ContractId{1}, {"PUSH 0\nPUSH 1\nSSTORE\nRETURN", "ABORT"});
  PortableStateView view(state_with(ContractId{1}, {}));
  const ContractLogic* ptr = &ok;
  Interpreter interp(std::span(&ptr, 1), view);
  std::vector<CallStep> steps{{0, 0, {}}, {0, 1, {}}, {0, 0, {}}};
  EXPECT_EQ(interp.run(AccountId{1}, steps).status, ExecStatus::kExplicitAbort);
}

TEST_F(VmTest, GasAccumulatesAcrossSteps) {
  const auto logic = make_contract(ContractId{1}, {"PUSH 1\nPOP\nRETURN"});
  PortableStateView view(state_with(ContractId{1}, {}));
  const ContractLogic* ptr = &logic;
  Interpreter interp(std::span(&ptr, 1), view);
  std::vector<CallStep> steps(3, CallStep{0, 0, {}});
  const auto r = interp.run(AccountId{1}, steps);
  EXPECT_EQ(r.gas_used, 3 * (gas_cost(Op::kPush) + gas_cost(Op::kPop) + gas_cost(Op::kReturn)));
}

TEST(Assembler, RejectsUnknownOp) {
  EXPECT_FALSE(assemble("FLY 3").ok());
}

TEST(Assembler, RejectsMissingImmediate) {
  EXPECT_FALSE(assemble("PUSH").ok());
}

TEST(Assembler, RejectsUnknownLabel) {
  EXPECT_FALSE(assemble("JUMP nowhere").ok());
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_FALSE(assemble("a:\na:\nRETURN").ok());
}

TEST(Assembler, RejectsTrailingTokens) {
  EXPECT_FALSE(assemble("PUSH 1 2").ok());
}

TEST(Assembler, NumericJumpTargets) {
  auto code = assemble("PUSH 1\nJZ 0\nRETURN");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value()[1].imm, 0u);
}

TEST(Assembler, CommentsAndBlankLines) {
  auto code = assemble("; header comment\n\nPUSH 1 ; inline\n\nRETURN\n");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value().size(), 2u);
}

TEST(Assembler, DisassembleRoundTripShape) {
  auto code = assemble("PUSH 5\nCALL 2 1\nRETURN");
  ASSERT_TRUE(code.ok());
  const std::string dis = disassemble(code.value());
  EXPECT_NE(dis.find("PUSH 5"), std::string::npos);
  EXPECT_NE(dis.find("CALL 2 1"), std::string::npos);
  EXPECT_NE(dis.find("RETURN"), std::string::npos);
}

TEST(Bytecode, CallPacking) {
  const auto imm = pack_call(300, 7);
  EXPECT_EQ(call_slot(imm), 300);
  EXPECT_EQ(call_function(imm), 7);
}

TEST(Bytecode, CodeSizeGrowsWithCode) {
  ContractLogic small;
  small.functions.push_back({"f", {{Op::kReturn, 0}}});
  ContractLogic big;
  big.functions.push_back({"f", std::vector<Instruction>(100, {Op::kPush, 1})});
  EXPECT_LT(small.code_size_bytes(), big.code_size_bytes());
}

}  // namespace
}  // namespace jenga::vm
