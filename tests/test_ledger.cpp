// Ledger: state store, locks, blocks/chains, transactions, portable state,
// and placement rules.
#include <gtest/gtest.h>

#include <set>
#include <span>

#include "crypto/sha256.hpp"
#include "ledger/block.hpp"
#include "ledger/locks.hpp"
#include "ledger/placement.hpp"
#include "ledger/portable_state.hpp"
#include "ledger/state_store.hpp"
#include "ledger/transaction.hpp"

namespace jenga::ledger {
namespace {

TEST(StateStore, AccountLifecycle) {
  StateStore store;
  EXPECT_FALSE(store.has_account(AccountId{1}));
  store.create_account(AccountId{1}, 500);
  EXPECT_TRUE(store.has_account(AccountId{1}));
  EXPECT_EQ(store.balance(AccountId{1}), 500u);
  EXPECT_TRUE(store.set_balance(AccountId{1}, 300));
  EXPECT_EQ(store.balance(AccountId{1}), 300u);
  EXPECT_FALSE(store.set_balance(AccountId{2}, 1));  // unknown account
  EXPECT_FALSE(store.balance(AccountId{2}).has_value());
}

TEST(StateStore, TotalBalanceSums) {
  StateStore store;
  store.create_account(AccountId{1}, 100);
  store.create_account(AccountId{2}, 250);
  EXPECT_EQ(store.total_balance(), 350u);
}

TEST(StateStore, ContractStateLifecycle) {
  StateStore store;
  EXPECT_EQ(store.contract_state(ContractId{9}), nullptr);
  store.create_contract_state(ContractId{9}, {{1, 10}, {2, 20}});
  ASSERT_NE(store.contract_state(ContractId{9}), nullptr);
  EXPECT_EQ(store.contract_state(ContractId{9})->at(2), 20u);
  EXPECT_TRUE(store.set_contract_state(ContractId{9}, {{1, 11}}));
  EXPECT_EQ(store.contract_state(ContractId{9})->at(1), 11u);
  EXPECT_FALSE(store.set_contract_state(ContractId{8}, {}));
}

TEST(StateStore, StorageAccounting) {
  StateStore store;
  EXPECT_EQ(store.state_storage_bytes(), 0u);
  store.create_account(AccountId{1}, 0);
  EXPECT_EQ(store.state_storage_bytes(), kAccountStateBytes);
  store.create_contract_state(ContractId{1}, {{1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(store.state_storage_bytes(),
            kAccountStateBytes + kContractStateOverheadBytes + 3 * kStateEntryBytes);
}

TEST(StateStore, DigestIsIncrementalAndOrderIndependent) {
  // The digest is the trie's cached incremental root; it must be a pure
  // function of the key→value mapping.  Two stores reaching the same state
  // through different mutation orders (including deletes-by-overwrite) agree,
  // and the cached root always matches a from-scratch recompute.
  StateStore a;
  StateStore b;
  for (std::uint64_t i = 0; i < 50; ++i) a.create_account(AccountId{i}, i * 7);
  for (std::uint64_t i = 50; i-- > 0;) b.create_account(AccountId{i}, 1);
  for (std::uint64_t i = 0; i < 50; ++i) b.set_balance(AccountId{i}, i * 7);
  a.create_contract_state(ContractId{3}, {{1, 10}});
  b.create_contract_state(ContractId{3}, {{1, 99}});
  b.set_contract_state(ContractId{3}, {{1, 10}});
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest(), a.trie().recompute_root());

  // Any divergence in content diverges the digest.
  b.set_balance(AccountId{49}, 0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(StateStore, DigestChangesWithEveryMutation) {
  StateStore store;
  const Hash256 empty = store.digest();
  store.create_account(AccountId{1}, 5);
  const Hash256 one = store.digest();
  EXPECT_NE(one, empty);
  store.set_balance(AccountId{1}, 6);
  EXPECT_NE(store.digest(), one);
  store.set_balance(AccountId{1}, 5);
  EXPECT_EQ(store.digest(), one);  // same content, same root
}

TEST(LogicStore, DeduplicatesAndAccounts) {
  LogicStore store;
  auto logic = std::make_shared<vm::ContractLogic>();
  logic->id = ContractId{5};
  logic->functions.push_back({"f", {{vm::Op::kReturn, 0}}});
  store.add(logic);
  store.add(logic);  // duplicate add must not double-count
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.logic_storage_bytes(), logic->code_size_bytes());
  EXPECT_TRUE(store.has(ContractId{5}));
  EXPECT_FALSE(store.has(ContractId{6}));
}

TEST(LockManager, ExclusiveOwnership) {
  LockManager locks;
  const Hash256 tx1 = crypto::sha256("tx1");
  const Hash256 tx2 = crypto::sha256("tx2");
  EXPECT_TRUE(locks.lock_contract(ContractId{1}, tx1));
  EXPECT_TRUE(locks.lock_contract(ContractId{1}, tx1));   // re-entrant for owner
  EXPECT_FALSE(locks.lock_contract(ContractId{1}, tx2));  // contended
  EXPECT_TRUE(locks.contract_locked(ContractId{1}));
  EXPECT_FALSE(locks.unlock_contract(ContractId{1}, tx2));  // non-owner release
  EXPECT_TRUE(locks.unlock_contract(ContractId{1}, tx1));
  EXPECT_FALSE(locks.contract_locked(ContractId{1}));
  EXPECT_TRUE(locks.lock_contract(ContractId{1}, tx2));  // now free
}

TEST(LockManager, AccountLocksIndependent) {
  LockManager locks;
  const Hash256 tx1 = crypto::sha256("tx1");
  EXPECT_TRUE(locks.lock_account(AccountId{7}, tx1));
  EXPECT_TRUE(locks.lock_contract(ContractId{7}, tx1));  // distinct namespaces
  EXPECT_EQ(locks.held_locks(), 2u);
}

TEST(Chain, AppendsLinkedBlocks) {
  Chain chain(ShardId{0});
  const auto b0 = build_block(ShardId{0}, 0, chain.tip_hash(),
                              {crypto::sha256("t1"), crypto::sha256("t2")}, 1024, 100);
  ASSERT_TRUE(chain.append(b0));
  const auto b1 = build_block(ShardId{0}, 1, chain.tip_hash(), {crypto::sha256("t3")}, 512, 200);
  ASSERT_TRUE(chain.append(b1));
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.total_txs(), 3u);
  EXPECT_EQ(chain.total_bytes(), 1024 + 512 + 2 * Block::kHeaderBytes);
  EXPECT_TRUE(chain.verify());
}

TEST(Chain, RejectsWrongHeight) {
  Chain chain(ShardId{0});
  const auto b = build_block(ShardId{0}, 5, chain.tip_hash(), {}, 0, 0);
  EXPECT_FALSE(chain.append(b));
}

TEST(Chain, RejectsWrongParent) {
  Chain chain(ShardId{0});
  const auto b = build_block(ShardId{0}, 0, crypto::sha256("bogus"), {}, 0, 0);
  EXPECT_FALSE(chain.append(b));
}

TEST(Chain, RejectsWrongShard) {
  Chain chain(ShardId{0});
  const auto b = build_block(ShardId{1}, 0, chain.tip_hash(), {}, 0, 0);
  EXPECT_FALSE(chain.append(b));
}

TEST(Chain, RejectsTamperedRoot) {
  Chain chain(ShardId{0});
  auto b = build_block(ShardId{0}, 0, chain.tip_hash(), {crypto::sha256("t")}, 512, 0);
  b.tx_hashes.push_back(crypto::sha256("sneaky"));
  EXPECT_FALSE(chain.append(b));
}

TEST(Transaction, HashStableAndDistinct) {
  auto t1 = make_transfer(AccountId{1}, AccountId{2}, 100, 1, 0);
  auto t2 = make_transfer(AccountId{1}, AccountId{2}, 100, 1, 0);
  auto t3 = make_transfer(AccountId{1}, AccountId{2}, 101, 1, 0);
  EXPECT_EQ(t1.hash, t2.hash);
  EXPECT_NE(t1.hash, t3.hash);
}

TEST(Transaction, WireSizeFloorsAtPaperSetting) {
  auto t = make_transfer(AccountId{1}, AccountId{2}, 100, 1, 0);
  EXPECT_EQ(t.wire_size(), kTxWireBytes);
}

TEST(Transaction, ContractCallCountsStepsAndContracts) {
  Transaction tx;
  tx.kind = TxKind::kContractCall;
  tx.sender = AccountId{1};
  tx.contracts = {ContractId{10}, ContractId{11}, ContractId{12}};
  tx.accounts = {AccountId{1}};
  for (int i = 0; i < 7; ++i) tx.steps.push_back({static_cast<std::uint16_t>(i % 3), 0, {}});
  tx.finalize();
  EXPECT_EQ(tx.step_count(), 7u);
  EXPECT_EQ(tx.distinct_contracts(), 3u);
  EXPECT_FALSE(tx.hash.is_zero());
}

TEST(Transaction, DeployCarriesLogicSize) {
  auto logic = std::make_shared<vm::ContractLogic>();
  logic->id = ContractId{1};
  logic->functions.push_back({"f", std::vector<vm::Instruction>(200, {vm::Op::kPush, 1})});
  auto tx = make_deploy(AccountId{1}, logic, 10, 5, 0);
  EXPECT_GT(tx.wire_size(), kTxWireBytes);  // code dominates
}

TEST(PortableState, MergeAndWireSize) {
  PortableState a, b;
  a.contracts[ContractId{1}] = {{1, 1}};
  a.balances[AccountId{1}] = 10;
  b.contracts[ContractId{2}] = {{2, 2}, {3, 3}};
  b.balances[AccountId{2}] = 20;
  a.merge(b);
  EXPECT_EQ(a.contracts.size(), 2u);
  EXPECT_EQ(a.balances.size(), 2u);
  EXPECT_EQ(a.total_balance(), 30u);
  EXPECT_GT(a.wire_size(), 16u);
}

TEST(PortableState, MergeOverwritesWithNewer) {
  PortableState a, b;
  a.contracts[ContractId{1}] = {{1, 1}};
  b.contracts[ContractId{1}] = {{1, 99}};
  a.merge(b);
  EXPECT_EQ(a.contracts.at(ContractId{1}).at(1), 99u);
}

PortableState sample_portable() {
  PortableState state;
  state.contracts[ContractId{1}] = {{1, 10}, {2, 20}};
  state.contracts[ContractId{7}] = {};
  state.balances[AccountId{3}] = 300;
  state.balances[AccountId{4}] = 400;
  return state;
}

TEST(PortableState, EncodeDecodeRoundTrip) {
  const PortableState state = sample_portable();
  const auto wire = state.encode();
  auto decoded = PortableState::decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().contracts, state.contracts);
  EXPECT_EQ(decoded.value().balances, state.balances);
  EXPECT_EQ(decoded.value().total_balance(), 700u);

  // Empty bundles round-trip too.
  auto empty = PortableState::decode(PortableState{}.encode());
  ASSERT_TRUE(empty.ok()) << empty.error();
  EXPECT_TRUE(empty.value().empty());
}

TEST(PortableState, DecodeRejectsTruncation) {
  const auto wire = sample_portable().encode();
  // Every proper prefix must fail cleanly — no crash, no partial bundle.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    auto r = PortableState::decode(std::span(wire).first(cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
  }
  // Trailing garbage is rejected as a length mismatch.
  auto padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(PortableState::decode(padded).ok());
}

TEST(PortableState, DecodeRejectsBitFlips) {
  const auto wire = sample_portable().encode();
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    auto bent = wire;
    bent[byte] ^= 0x10;
    auto r = PortableState::decode(bent);
    EXPECT_FALSE(r.ok()) << "flip in byte " << byte << " decoded";
  }
}

TEST(Placement, DeterministicAndInRange) {
  for (std::uint32_t s : {4u, 6u, 8u, 10u, 12u}) {
    for (std::uint64_t id = 0; id < 100; ++id) {
      const auto shard = shard_of_contract(ContractId{id}, s);
      EXPECT_LT(shard.value, s);
      EXPECT_EQ(shard, shard_of_contract(ContractId{id}, s));
      EXPECT_LT(shard_of_account(AccountId{id}, s).value, s);
    }
  }
}

TEST(Placement, RoughlyBalanced) {
  const std::uint32_t s = 8;
  std::vector<int> counts(s, 0);
  for (std::uint64_t id = 0; id < 8000; ++id)
    counts[shard_of_contract(ContractId{id}, s).value]++;
  for (auto c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Placement, ChannelOfTxUsesHash) {
  auto t1 = make_transfer(AccountId{1}, AccountId{2}, 1, 1, 0);
  auto t2 = make_transfer(AccountId{3}, AccountId{4}, 2, 1, 0);
  const auto c1 = channel_of_tx(t1.hash, 12);
  const auto c2 = channel_of_tx(t2.hash, 12);
  EXPECT_LT(c1.value, 12u);
  EXPECT_LT(c2.value, 12u);
  // Determinism.
  EXPECT_EQ(c1, channel_of_tx(t1.hash, 12));
}

}  // namespace
}  // namespace jenga::ledger
