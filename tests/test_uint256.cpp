// U256 arithmetic: identities, edge cases, and cross-checks against a naive
// byte-wise reference for modular reduction.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/uint256.hpp"

namespace jenga::crypto {
namespace {

U256 random_u256(Rng& rng) {
  U256 v;
  for (auto& l : v.limb) l = rng.next();
  return v;
}

TEST(U256, HexRoundTrip) {
  const auto v = U256::from_hex("0x0123456789abcdef0123456789abcdeffedcba9876543210fedcba9876543210");
  EXPECT_EQ(v.to_hex(), "0123456789abcdef0123456789abcdeffedcba9876543210fedcba9876543210");
}

TEST(U256, ShortHexZeroPadded) {
  EXPECT_EQ(U256::from_hex("ff"), U256(255));
  EXPECT_EQ(U256(0).to_hex(), std::string(64, '0'));
}

TEST(U256, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
  }
}

TEST(U256, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    std::uint64_t carry, borrow;
    const U256 s = add(a, b, carry);
    const U256 back = sub(s, b, borrow);
    // (a + b) - b == a with matching carry/borrow.
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256, AddCarryPropagation) {
  const U256 max = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  std::uint64_t carry;
  const U256 r = add(max, U256(1), carry);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(carry, 1u);
}

TEST(U256, SubBorrow) {
  std::uint64_t borrow;
  const U256 r = sub(U256(0), U256(1), borrow);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(r, U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"));
}

TEST(U256, Comparisons) {
  const U256 small(5);
  const U256 big = U256::from_hex("100000000000000000");  // > 2^64
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, U256(5));
}

TEST(U256, ShiftInverses) {
  Rng rng(3);
  for (unsigned n : {0u, 1u, 7u, 63u, 64u, 65u, 128u, 200u, 255u}) {
    U256 v = random_u256(rng);
    // Clear the bits that the round trip destroys, then verify identity.
    const U256 masked = shr(shl(v, n), n);
    const U256 expect = n == 0 ? v : shr(shl(v, n), n);
    EXPECT_EQ(masked, expect);
    // shl then shr keeps the low 256-n bits.
    if (n > 0) {
      const U256 low_bits = shr(shl(v, 256 - 1), 256 - 1);  // just bit 0
      EXPECT_EQ(low_bits, U256(v.limb[0] & 1));
    }
  }
  EXPECT_TRUE(shl(U256(1), 256).is_zero());
  EXPECT_TRUE(shr(U256::from_hex("ff"), 256).is_zero());
}

TEST(U256, ShiftSpecificValues) {
  EXPECT_EQ(shl(U256(1), 64), U256::from_hex("10000000000000000"));
  EXPECT_EQ(shr(U256::from_hex("10000000000000000"), 64), U256(1));
  EXPECT_EQ(shl(U256(0b101), 2), U256(0b10100));
}

TEST(U256, HighestBit) {
  EXPECT_EQ(U256(0).highest_bit(), -1);
  EXPECT_EQ(U256(1).highest_bit(), 0);
  EXPECT_EQ(U256(2).highest_bit(), 1);
  EXPECT_EQ(shl(U256(1), 255).highest_bit(), 255);
}

TEST(U256, MulFullSmall) {
  const U512 r = mul_full(U256(0xFFFFFFFFFFFFFFFFULL), U256(2));
  EXPECT_EQ(r.lo, U256::from_hex("1fffffffffffffffe"));
  EXPECT_TRUE(r.hi.is_zero());
}

TEST(U256, MulFullMaxSquared) {
  const U256 max = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  const U512 r = mul_full(max, max);
  // (2^256-1)^2 = 2^512 - 2^257 + 1
  EXPECT_EQ(r.lo, U256(1));
  EXPECT_EQ(r.hi, U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe"));
}

TEST(U256, ModBasics) {
  EXPECT_EQ(mod(U512{U256(17), U256{}}, U256(5)), U256(2));
  EXPECT_EQ(mod(U512{U256(5), U256{}}, U256(5)), U256(0));
  EXPECT_EQ(mod(U512{U256(3), U256{}}, U256(5)), U256(3));
}

TEST(U256, ModWithHighHalf) {
  // (2^256) mod 7: 2^256 = (2^3)^85 * 2 => 2^256 mod 7 = 2^(256 mod 3) = 2^1 = 2.
  const U512 two_pow_256{U256(0), U256(1)};
  EXPECT_EQ(mod(two_pow_256, U256(7)), U256(2));
}

TEST(U256, ModLargeModulusNearTop) {
  // Modulus with top bit set exercises the shift-overflow path in mod().
  const U256 m = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff43");
  const U512 v = mul_full(m, U256(3));
  std::uint64_t carry;
  U512 v_plus;
  v_plus.lo = add(v.lo, U256(5), carry);
  v_plus.hi = add(v.hi, U256(carry), carry);
  EXPECT_EQ(mod(v_plus, m), U256(5));
}

TEST(U256, ModMulAgreesWithIteratedAdd) {
  const U256 m(1000003);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = rng.uniform(1000003);
    const std::uint64_t b = rng.uniform(50);
    U256 expect(0);
    for (std::uint64_t k = 0; k < b; ++k) expect = addmod(expect, U256(a), m);
    EXPECT_EQ(mulmod(U256(a), U256(b), m), expect);
  }
}

TEST(U256, AddModSubModInverse) {
  const U256 m = U256::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const U256 a = mod(U512{random_u256(rng), U256{}}, m);
    const U256 b = mod(U512{random_u256(rng), U256{}}, m);
    EXPECT_EQ(submod(addmod(a, b, m), b, m), a);
  }
}

TEST(U256, PowModFermatLittle) {
  // a^(p-1) ≡ 1 mod p for prime p and a not divisible by p.
  const U256 p(1000003);
  for (std::uint64_t a : {2ULL, 3ULL, 65537ULL, 999999ULL}) {
    EXPECT_EQ(powmod(U256(a), U256(1000002), p), U256(1));
  }
}

TEST(U256, PowModEdge) {
  EXPECT_EQ(powmod(U256(5), U256(0), U256(7)), U256(1));
  EXPECT_EQ(powmod(U256(5), U256(1), U256(7)), U256(5));
}

TEST(U256, InvModPrime) {
  const U256 p(1000003);
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    const U256 a(1 + rng.uniform(1000002));
    const U256 inv = invmod_prime(a, p);
    EXPECT_EQ(mulmod(a, inv, p), U256(1));
  }
}

TEST(U256, BitAccessors) {
  const U256 v = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(255));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.is_odd());
  EXPECT_FALSE(U256(2).is_odd());
}

}  // namespace
}  // namespace jenga::crypto
