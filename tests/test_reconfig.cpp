// Live epoch reconfiguration: beacon-driven lattice reshuffles under traffic.
//
// The acceptance scenario drives >= 3 epoch transitions under message drops,
// a Byzantine node, and boundary churn, and requires the run to end with zero
// invariant violations: no leaked locks, balance conserved, no divergent
// decides, and every submitted transaction terminal (committed or aborted).
// Determinism must survive reconfiguration too: the same seed produces a
// bit-identical ledger digest for any exec worker count, transitions and all.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/jenga_system.hpp"
#include "harness/genesis.hpp"
#include "harness/runner.hpp"
#include "ledger/placement.hpp"
#include "security/fault_injector.hpp"
#include "workload/trace.hpp"

namespace jenga::security {
namespace {

using core::JengaConfig;
using core::JengaSystem;

struct ReconfigFixture {
  explicit ReconfigFixture(JengaConfig cfg, std::uint64_t workload_seed = 7) {
    workload::TraceConfig tc;
    tc.num_contracts = 150;
    tc.num_accounts = 200;
    tc.max_contracts_per_tx = 4;
    tc.max_steps = 8;
    gen = std::make_unique<workload::TraceGenerator>(tc, Rng(workload_seed));
    net = std::make_unique<sim::Network>(sim, sim::NetConfig{}, Rng(cfg.seed));
    system = std::make_unique<JengaSystem>(sim, *net, cfg, harness::make_genesis(*gen));
    injector = std::make_unique<FaultInjector>(sim, *net, *system);
    initial_balance = system->total_account_balance();
    system->start();
  }

  void submit_workload(int n, SimTime spacing) {
    for (int i = 0; i < n; ++i) {
      sim.run_until(sim.now() + spacing);
      auto tx = std::make_shared<ledger::Transaction>(gen->contract_tx(1'000'000, sim.now()));
      system->submit(tx);
    }
  }

  sim::Simulator sim;
  std::unique_ptr<workload::TraceGenerator> gen;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<JengaSystem> system;
  std::unique_ptr<FaultInjector> injector;
  std::uint64_t initial_balance = 0;
};

/// Sanitizer CI sets JENGA_RECONFIG_QUICK=1: the non-acceptance tests run a
/// shorter horizon (the chaos acceptance and determinism tests always run in
/// full — they are the bar this subsystem is held to).
bool quick_mode() {
  const char* env = std::getenv("JENGA_RECONFIG_QUICK");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

JengaConfig reconfig_config() {
  JengaConfig cfg;
  cfg.num_shards = 2;
  cfg.nodes_per_shard = 8;  // 16 nodes; beacon quorum 2N/3+1 = 11
  cfg.view_timeout = 15 * kSecond;
  cfg.pending_timeout = 60 * kSecond;
  cfg.epoch_interval = 60 * kSecond;
  cfg.epoch_drain_window = 10 * kSecond;
  cfg.epoch_beacon_lead = 20 * kSecond;
  return cfg;
}

TEST(Reconfig, CleanTransitionsPreserveInvariants) {
  ReconfigFixture f(reconfig_config());
  f.submit_workload(40, 3 * kSecond);  // spans the first two cutovers
  f.sim.run_until((quick_mode() ? 280 : 400) * kSecond);

  const auto& es = f.system->epoch_stats();
  EXPECT_GE(es.transitions, 3u);
  EXPECT_EQ(f.system->current_epoch(), es.transitions);
  EXPECT_FALSE(f.system->draining());
  EXPECT_GT(es.contributions_accepted, 0u);

  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.epoch_transitions, es.transitions);
  EXPECT_EQ(f.system->stats().committed + f.system->stats().aborted, 40u)
      << "limbo txs: " << f.system->in_flight();
}

// The issue's acceptance bar: >= 3 transitions under message drops, a
// Byzantine node, and node churn at epoch boundaries, with a clean audit.
TEST(Reconfig, ChaosAcceptanceSurvivesDropsByzantineAndChurn) {
  JengaConfig cfg = reconfig_config();
  ReconfigFixture f(cfg);
  const auto shard0 = f.system->lattice().shard_members(ShardId{0});
  const auto shard1 = f.system->lattice().shard_members(ShardId{1});

  FaultPlan plan;
  sim::LinkFaults lossy;
  lossy.drop_rate = 0.05;
  plan.ramps.push_back({0, lossy});
  plan.byzantine.push_back({shard1[1], consensus::ByzantineMode::kSilent});
  // One node departs exactly at the first cutover and rejoins at the second.
  plan.epoch_churn.push_back({1, {shard0[4]}, {}});
  plan.epoch_churn.push_back({2, {}, {shard0[4]}});
  f.injector->arm(plan);
  EXPECT_EQ(f.injector->events_armed(), plan.event_count());

  f.submit_workload(50, 3 * kSecond);
  f.sim.run_until(500 * kSecond);

  const auto& es = f.system->epoch_stats();
  EXPECT_GE(es.transitions, 3u);
  EXPECT_EQ(es.boundary_lock_leaks, 0u);
  EXPECT_EQ(es.boundary_balance_mismatches, 0u);

  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  const auto& st = f.system->stats();
  EXPECT_EQ(st.committed + st.aborted, 50u) << "limbo txs: " << f.system->in_flight();
  EXPECT_GT(f.net->fault_stats().dropped, 0u);
  EXPECT_GT(f.net->fault_stats().down_blocked, 0u);  // the churned node was really gone
}

// Satellite: requeued transactions must not double-count submissions or lose
// their submit timestamps (which would inflate latency percentiles).
TEST(Reconfig, RequeueAccountingStaysConsistent) {
  JengaConfig cfg = reconfig_config();
  cfg.epoch_interval = 40 * kSecond;  // drain window 30s..40s
  ReconfigFixture f(cfg);
  f.submit_workload(50, kSecond);  // injection continues through the drain
  f.sim.run_until((quick_mode() ? 250 : 400) * kSecond);

  const auto& es = f.system->epoch_stats();
  EXPECT_GE(es.transitions, 1u);
  EXPECT_GT(es.txs_requeued, 0u);  // drain-window submissions crossed the boundary

  const auto& st = f.system->stats();
  EXPECT_EQ(st.submitted, 50u);  // requeues are not re-submissions
  EXPECT_EQ(st.committed + st.aborted, 50u) << "limbo txs: " << f.system->in_flight();
  EXPECT_EQ(st.commit_latencies.size(), st.committed);
  for (const SimTime lat : st.commit_latencies) {
    EXPECT_GE(lat, 0);                // submit timestamps survived the requeue
    EXPECT_LE(lat, f.sim.now());      // no bogus epoch-sized latencies
  }
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
}

// Satellite: a channel-side gather that times out must fan aborts back to the
// granting shards so their Phase-1 locks release.  The transaction's copy to
// the execution channel is swallowed (its contact node is down), so the
// channel only ever sees grants — the entry can never become runnable.
TEST(Reconfig, GatherExpiryReleasesShardLocks) {
  JengaConfig cfg = reconfig_config();
  cfg.epoch_interval = 0;  // isolate the expiry path from reconfiguration
  cfg.pending_timeout = 30 * kSecond;
  ReconfigFixture f(cfg);

  auto tx = std::make_shared<ledger::Transaction>(f.gen->contract_tx(1'000'000, f.sim.now()));
  const ChannelId ch = ledger::channel_of_tx(tx->hash, cfg.num_shards);
  const auto& members = f.system->lattice().channel_members(ch);
  // submit() pre-increments the round-robin contact counter, so the first
  // submission addresses members[1].
  f.net->set_node_down(members[1 % members.size()], true);
  f.system->submit(tx);

  // Before the timeout: Phase 1 granted, so the shards really hold locks.
  f.sim.run_until(15 * kSecond);
  EXPECT_GT(f.system->held_locks(), 0u);
  EXPECT_EQ(f.system->in_flight(), 1u);

  f.sim.run_until(200 * kSecond);
  EXPECT_EQ(f.system->held_locks(), 0u);   // the regression: grants were locked forever
  EXPECT_EQ(f.system->in_flight(), 0u);
  EXPECT_GE(f.system->stats().aborted, 1u);
  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
}

// Satellite: a node that crashes in one epoch and recovers after a reshuffle
// must state-sync into its *new* group's chain, not resume the old one.
TEST(Reconfig, RecoveredNodeSyncsIntoNewGroup) {
  JengaConfig cfg = reconfig_config();
  ReconfigFixture f(cfg);
  const NodeId victim = f.system->lattice().shard_members(ShardId{0})[3];

  FaultPlan plan;
  // Crash before the first cutover (~60s), recover mid-epoch-1 while the
  // requeued boundary traffic is still deciding heights in the new groups.
  plan.crashes.push_back({victim, 5 * kSecond, 100 * kSecond});
  f.injector->arm(plan);

  f.submit_workload(80, kSecond);
  // Each reshuffle replaces the victim's replica (and its stats), so sample
  // the post-recovery replica as the run progresses and keep the maxima.
  std::uint64_t sync_requests = 0, sync_applied = 0;
  const SimTime end = (quick_mode() ? 300 : 450) * kSecond;
  for (SimTime t = 105 * kSecond; t <= end; t += 5 * kSecond) {
    f.sim.run_until(t);
    const auto& rs = f.system->shard_replica(victim).stats();
    sync_requests = std::max(sync_requests, rs.sync_requests_sent);
    sync_applied = std::max(sync_applied, rs.sync_heights_applied);
  }

  EXPECT_GE(f.system->current_epoch(), 1u);
  // Recovery hit the victim's *post-reshuffle* replica and used the
  // state-sync path to catch up on the new group's chain.
  EXPECT_GT(sync_requests, 0u);
  EXPECT_GT(sync_applied, 0u);

  const InvariantReport report = check_invariants(*f.system, f.initial_balance);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(f.system->stats().committed + f.system->stats().aborted, 80u)
      << "limbo txs: " << f.system->in_flight();
}

// Seeded determinism across transitions: same seed, different exec worker
// counts -> bit-identical ledger digest (and identical transition counts).
TEST(Reconfig, DeterministicLedgerAcrossExecWorkers) {
  harness::RunResult runs[2];
  const std::uint32_t workers[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    harness::RunConfig rc;
    rc.kind = harness::SystemKind::kJenga;
    rc.num_shards = 2;
    rc.nodes_per_shard = 8;
    rc.seed = 11;
    rc.contract_txs = 120;
    rc.inject_window = 120 * kSecond;
    rc.max_sim_time = 500 * kSecond;
    rc.exec_workers = workers[i];
    rc.epoch_interval = 50 * kSecond;
    rc.epoch_beacon_lead = 20 * kSecond;
    rc.epoch_drain_window = 10 * kSecond;
    runs[i] = harness::run_experiment(rc);
  }
  EXPECT_GE(runs[0].epoch_transitions, 1u);
  EXPECT_EQ(runs[0].epoch_transitions, runs[1].epoch_transitions);
  EXPECT_EQ(runs[0].epoch_txs_requeued, runs[1].epoch_txs_requeued);
  EXPECT_EQ(runs[0].stats.committed, runs[1].stats.committed);
  EXPECT_EQ(runs[0].stats.aborted, runs[1].stats.aborted);
  EXPECT_EQ(runs[0].ledger_digest, runs[1].ledger_digest);
}

}  // namespace
}  // namespace jenga::security
