// secp256k1 group law, scalar multiplication against known vectors, and
// point compression.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"

namespace jenga::crypto {
namespace {

TEST(Secp256k1, GeneratorOnCurve) {
  EXPECT_TRUE(is_on_curve(generator()));
  EXPECT_FALSE(generator().infinity);
}

TEST(Secp256k1, FieldBasics) {
  const U256 a = U256::from_hex("1234567890abcdef");
  EXPECT_EQ(fp_add(a, U256(0)), a);
  EXPECT_EQ(fp_sub(a, a), U256(0));
  EXPECT_EQ(fp_mul(a, U256(1)), a);
  // p ≡ 0 mod p: addmod reduces the unreduced input.
  EXPECT_TRUE(fp_add(kFieldP, U256(0)).is_zero());
  EXPECT_EQ(fp_sub(kFieldP, kFieldP), U256(0));
}

TEST(Secp256k1, FieldInverse) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    U256 a;
    for (auto& l : a.limb) l = rng.next();
    a = mod(U512{a, U256{}}, kFieldP);
    if (a.is_zero()) continue;
    EXPECT_EQ(fp_mul(a, fp_inv(a)), U256(1));
  }
}

TEST(Secp256k1, FieldSqrtOfSquares) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    U256 a;
    for (auto& l : a.limb) l = rng.next();
    a = mod(U512{a, U256{}}, kFieldP);
    const U256 sq = fp_sqr(a);
    auto root = fp_sqrt(sq);
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == fp_sub(U256{}, a));
  }
}

TEST(Secp256k1, NonResidueRejected) {
  // y^2 = x^3 + 7 has no solution for roughly half of x; find a non-residue.
  int rejected = 0;
  for (std::uint64_t x = 1; x < 40; ++x) {
    const U256 rhs = fp_add(fp_mul(fp_sqr(U256(x)), U256(x)), U256(7));
    if (!fp_sqrt(rhs)) ++rejected;
  }
  EXPECT_GT(rejected, 5);
}

TEST(Secp256k1, TwoGKnownVector) {
  const Point two_g = point_double(generator());
  EXPECT_EQ(two_g.x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp256k1, ThreeGKnownVector) {
  const Point three_g = point_add(point_double(generator()), generator());
  EXPECT_EQ(three_g.x.to_hex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
}

TEST(Secp256k1, ScalarMulMatchesRepeatedAdd) {
  Point acc;  // infinity
  for (std::uint64_t k = 1; k <= 20; ++k) {
    acc = point_add(acc, generator());
    EXPECT_EQ(point_mul_g(U256(k)), acc) << "k=" << k;
  }
}

TEST(Secp256k1, OrderTimesGeneratorIsInfinity) {
  EXPECT_TRUE(point_mul(kOrderN, generator()).infinity);
}

TEST(Secp256k1, NMinusOneGIsNegG) {
  std::uint64_t borrow;
  const U256 n_minus_1 = sub(kOrderN, U256(1), borrow);
  const Point p = point_mul_g(n_minus_1);
  EXPECT_EQ(p, point_neg(generator()));
}

TEST(Secp256k1, AddCommutes) {
  const Point a = point_mul_g(U256(12345));
  const Point b = point_mul_g(U256(67890));
  EXPECT_EQ(point_add(a, b), point_add(b, a));
}

TEST(Secp256k1, AddAssociates) {
  const Point a = point_mul_g(U256(111));
  const Point b = point_mul_g(U256(222));
  const Point c = point_mul_g(U256(333));
  EXPECT_EQ(point_add(point_add(a, b), c), point_add(a, point_add(b, c)));
}

TEST(Secp256k1, InfinityIsIdentity) {
  const Point a = point_mul_g(U256(7));
  const Point inf;
  EXPECT_EQ(point_add(a, inf), a);
  EXPECT_EQ(point_add(inf, a), a);
  EXPECT_TRUE(point_add(a, point_neg(a)).infinity);
}

TEST(Secp256k1, ScalarDistributesOverAdd) {
  // (k1 + k2)·G == k1·G + k2·G
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const U256 k1(rng.uniform(1'000'000) + 1);
    const U256 k2(rng.uniform(1'000'000) + 1);
    std::uint64_t carry;
    const U256 k = add(k1, k2, carry);
    EXPECT_EQ(point_mul_g(k), point_add(point_mul_g(k1), point_mul_g(k2)));
  }
}

TEST(Secp256k1, CompressRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 8; ++i) {
    const Point p = point_mul_g(U256(rng.uniform(1ULL << 40) + 1));
    auto back = decompress(compress(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
}

TEST(Secp256k1, CompressInfinity) {
  auto back = decompress(compress(Point{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->infinity);
}

TEST(Secp256k1, DecompressRejectsGarbage) {
  CompressedPoint c{};
  c[0] = 0x05;  // invalid prefix
  EXPECT_FALSE(decompress(c).has_value());
  // x >= p must be rejected.
  CompressedPoint big{};
  big[0] = 0x02;
  for (std::size_t i = 1; i < 33; ++i) big[i] = 0xFF;
  EXPECT_FALSE(decompress(big).has_value());
}

TEST(Secp256k1, OnCurveRejectsOffCurvePoint) {
  Point p = generator();
  p.y = fp_add(p.y, U256(1));
  EXPECT_FALSE(is_on_curve(p));
}

}  // namespace
}  // namespace jenga::crypto
