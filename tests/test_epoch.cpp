// Epoch manager: VRF contributions, the VDF'd randomness beacon, and the
// reshuffle it drives.
#include <gtest/gtest.h>

#include "core/epoch.hpp"

namespace jenga::core {
namespace {

class EpochTest : public ::testing::Test {
 protected:
  EpochTest() {
    for (std::uint64_t i = 0; i < 5; ++i) {
      keys_.push_back(crypto::keypair_from_seed(500 + i));
      pubs_.push_back(keys_.back().public_key);
    }
    mgr_ = std::make_unique<EpochManager>(pubs_, /*vdf_iterations=*/256,
                                          /*vdf_checkpoints=*/8);
  }

  std::vector<crypto::KeyPair> keys_;
  std::vector<crypto::Point> pubs_;
  std::unique_ptr<EpochManager> mgr_;
};

TEST_F(EpochTest, ContributionsVerifyAndAdvance) {
  const EpochId next{1};
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto c = mgr_->contribute(NodeId{static_cast<std::uint32_t>(i)}, keys_[i], next);
    EXPECT_TRUE(mgr_->accept(c, next)) << i;
  }
  EXPECT_EQ(mgr_->contributions(), 5u);
  const Hash256 before = mgr_->current_randomness();
  const auto r = mgr_->advance_epoch(3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(mgr_->current_epoch(), EpochId{1});
  EXPECT_NE(*r, before);
}

TEST_F(EpochTest, InsufficientContributionsBlocked) {
  const EpochId next{1};
  const auto c = mgr_->contribute(NodeId{0}, keys_[0], next);
  ASSERT_TRUE(mgr_->accept(c, next));
  EXPECT_FALSE(mgr_->advance_epoch(3).has_value());
  EXPECT_EQ(mgr_->current_epoch(), EpochId{0});
}

TEST_F(EpochTest, WrongKeyContributionRejected) {
  const EpochId next{1};
  // Node 0 tries to submit with node 1's key material.
  auto c = mgr_->contribute(NodeId{1}, keys_[1], next);
  c.node = NodeId{0};
  EXPECT_FALSE(mgr_->accept(c, next));
}

TEST_F(EpochTest, DuplicateContributionRejected) {
  const EpochId next{1};
  const auto c = mgr_->contribute(NodeId{2}, keys_[2], next);
  EXPECT_TRUE(mgr_->accept(c, next));
  EXPECT_FALSE(mgr_->accept(c, next));
}

TEST_F(EpochTest, WrongEpochRejected) {
  const auto c = mgr_->contribute(NodeId{0}, keys_[0], EpochId{2});
  EXPECT_FALSE(mgr_->accept(c, EpochId{2}));  // current is 0; next must be 1
}

TEST_F(EpochTest, TamperedBetaRejected) {
  const EpochId next{1};
  auto c = mgr_->contribute(NodeId{3}, keys_[3], next);
  c.beta.bytes[0] ^= 0xFF;
  EXPECT_FALSE(mgr_->accept(c, next));
}

TEST_F(EpochTest, RandomnessEvolvesAcrossEpochs) {
  std::vector<Hash256> history{mgr_->current_randomness()};
  for (int e = 1; e <= 3; ++e) {
    const EpochId next{static_cast<std::uint64_t>(e)};
    for (std::uint64_t i = 0; i < 5; ++i)
      ASSERT_TRUE(
          mgr_->accept(mgr_->contribute(NodeId{static_cast<std::uint32_t>(i)}, keys_[i], next),
                       next));
    auto r = mgr_->advance_epoch(4);
    ASSERT_TRUE(r.has_value());
    for (const auto& old : history) EXPECT_NE(*r, old);
    history.push_back(*r);
  }
}

TEST_F(EpochTest, ReshuffleChangesAssignments) {
  const Lattice before = mgr_->build_lattice(3, 6, /*key_seed=*/9);
  const EpochId next{1};
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(mgr_->accept(
        mgr_->contribute(NodeId{static_cast<std::uint32_t>(i)}, keys_[i], next), next));
  ASSERT_TRUE(mgr_->advance_epoch(5).has_value());
  const Lattice after = mgr_->build_lattice(3, 6, /*key_seed=*/9);

  int moved = 0;
  for (std::uint32_t n = 0; n < before.total_nodes(); ++n) {
    if (!(before.assignment(NodeId{n}).shard == after.assignment(NodeId{n}).shard)) ++moved;
  }
  EXPECT_GT(moved, 0);
  // The lattice invariants survive the reshuffle.
  for (std::uint32_t g = 0; g < 3; ++g) {
    EXPECT_EQ(after.shard_members(ShardId{g}).size(), 6u);
    EXPECT_EQ(after.channel_members(ChannelId{g}).size(), 6u);
  }
}

TEST_F(EpochTest, ProofOverWrongEpochInputRejected) {
  // A proof honestly generated over epoch 2's beacon input, then relabeled as
  // an epoch-1 contribution: the envelope's epoch number matches what the
  // manager expects, but the VRF was evaluated over the wrong input.
  const EpochId next{1};
  const auto c = mgr_->contribute(NodeId{0}, keys_[0], EpochId{2});
  EXPECT_FALSE(mgr_->accept(c, next));
  EXPECT_EQ(mgr_->contributions(), 0u);
}

TEST_F(EpochTest, AdversarialArrivalOrderDoesNotBiasBeacon) {
  // The combine must be order-independent: an adversary controlling delivery
  // order (and replaying duplicates in between) cannot steer the randomness.
  const EpochId next{1};
  std::vector<RandomnessContribution> cs;
  for (std::uint64_t i = 0; i < 5; ++i)
    cs.push_back(mgr_->contribute(NodeId{static_cast<std::uint32_t>(i)}, keys_[i], next));

  EpochManager forward(pubs_, 256, 8);
  for (const auto& c : cs) ASSERT_TRUE(forward.accept(c, next));
  EpochManager reversed(pubs_, 256, 8);
  for (auto it = cs.rbegin(); it != cs.rend(); ++it) {
    ASSERT_TRUE(reversed.accept(*it, next));
    EXPECT_FALSE(reversed.accept(*it, next));  // interleaved replay changes nothing
  }

  const auto r1 = forward.advance_epoch(5);
  const auto r2 = reversed.advance_epoch(5);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r1, *r2);
}

TEST_F(EpochTest, SingleHonestContributorRandomizes) {
  // Two adversarial members copy each other's beta; XOR of their pair
  // cancels, but one honest contribution still produces fresh randomness.
  const EpochId next{1};
  ASSERT_TRUE(mgr_->accept(mgr_->contribute(NodeId{0}, keys_[0], next), next));
  const auto r1 = mgr_->advance_epoch(1);
  ASSERT_TRUE(r1.has_value());

  EpochManager other(pubs_, 256, 8);
  ASSERT_TRUE(other.accept(other.contribute(NodeId{1}, keys_[1], next), next));
  const auto r2 = other.advance_epoch(1);
  ASSERT_TRUE(r2.has_value());
  EXPECT_NE(*r1, *r2);  // different honest contributors, different beacons
}

}  // namespace
}  // namespace jenga::core
